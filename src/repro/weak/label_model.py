"""Label models: combine labeling-function votes into weak labels.

Two combiners, mirroring Snorkel's progression:

- :class:`MajorityVote` — unweighted plurality of non-abstaining LFs;
- :class:`WeightedVote` — per-LF accuracy weights estimated on a small
  labeled development set (a practical stand-in for Snorkel's generative
  model, which needs no dev set but much more machinery).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.core.featurize import ColumnProfile
from repro.tabular.column import Column
from repro.types import FeatureType
from repro.weak.labeling_functions import NamedLF


@dataclass
class WeakLabel:
    """A weak label with its support and confidence."""

    label: FeatureType | None  # None when every LF abstained
    n_votes: int
    confidence: float


def vote_matrix(
    lfs: list[NamedLF],
    columns: list[Column],
    profiles: list[ColumnProfile],
) -> list[list["FeatureType | None"]]:
    """votes[i][j] = LF j's vote on column i (None = abstain)."""
    if len(columns) != len(profiles):
        raise ValueError("columns and profiles must align")
    return [
        [lf(column, profile) for lf in lfs]
        for column, profile in zip(columns, profiles)
    ]


class MajorityVote:
    """Plurality vote over non-abstaining LFs."""

    def __init__(self, lfs: list[NamedLF]):
        if not lfs:
            raise ValueError("need at least one labeling function")
        self.lfs = lfs

    def predict(
        self, columns: list[Column], profiles: list[ColumnProfile]
    ) -> list[WeakLabel]:
        out = []
        for row in vote_matrix(self.lfs, columns, profiles):
            votes = [v for v in row if v is not None]
            if not votes:
                out.append(WeakLabel(None, 0, 0.0))
                continue
            counts = Counter(votes)
            label, top = counts.most_common(1)[0]
            out.append(WeakLabel(label, len(votes), top / len(votes)))
        return out


@dataclass
class WeightedVote:
    """Accuracy-weighted vote; weights fit on a labeled development set.

    Each LF's weight is ``log(acc / (1 - acc))`` over its non-abstaining
    votes on the dev set (clipped), the naive-Bayes-optimal weighting for
    independent voters.
    """

    lfs: list[NamedLF]
    min_weight: float = 0.05
    weights_: dict[str, float] = field(default_factory=dict, init=False)

    def fit(
        self,
        columns: list[Column],
        profiles: list[ColumnProfile],
        labels: list[FeatureType],
    ) -> "WeightedVote":
        matrix = vote_matrix(self.lfs, columns, profiles)
        for j, lf in enumerate(self.lfs):
            correct = voted = 0
            for row, truth in zip(matrix, labels):
                if row[j] is None:
                    continue
                voted += 1
                if row[j] == truth:
                    correct += 1
            if voted == 0:
                self.weights_[lf.name] = self.min_weight
                continue
            accuracy = np.clip(correct / voted, 0.05, 0.95)
            weight = float(np.log(accuracy / (1.0 - accuracy)))
            self.weights_[lf.name] = max(weight, self.min_weight)
        return self

    def predict(
        self, columns: list[Column], profiles: list[ColumnProfile]
    ) -> list[WeakLabel]:
        if not self.weights_:
            raise RuntimeError("WeightedVote is not fitted; call fit() first")
        out = []
        for row in vote_matrix(self.lfs, columns, profiles):
            scores: dict[FeatureType, float] = {}
            n_votes = 0
            for lf, vote in zip(self.lfs, row):
                if vote is None:
                    continue
                n_votes += 1
                scores[vote] = scores.get(vote, 0.0) + self.weights_[lf.name]
            if not scores:
                out.append(WeakLabel(None, 0, 0.0))
                continue
            total = sum(scores.values())
            label = max(scores, key=scores.get)
            out.append(WeakLabel(label, n_votes, scores[label] / total))
        return out


def lf_summary(
    lfs: list[NamedLF],
    columns: list[Column],
    profiles: list[ColumnProfile],
    labels: list[FeatureType],
) -> list[dict]:
    """Per-LF coverage and accuracy diagnostics (Snorkel's LF analysis)."""
    matrix = vote_matrix(lfs, columns, profiles)
    rows = []
    n = len(columns)
    for j, lf in enumerate(lfs):
        voted = [(row[j], truth) for row, truth in zip(matrix, labels)
                 if row[j] is not None]
        coverage = len(voted) / n if n else 0.0
        accuracy = (
            sum(1 for vote, truth in voted if vote == truth) / len(voted)
            if voted
            else 0.0
        )
        rows.append(
            {"lf": lf.name, "coverage": coverage, "accuracy": accuracy}
        )
    return rows
