"""Labeling functions for weak supervision (paper Section 6.2 future work).

The paper points to Snorkel/Snuba-style weak supervision as "one potential
mechanism to amplify labeled datasets".  We realize it: a labeling function
(LF) votes a feature type for a column or abstains; the existing rule/syntax
heuristics become LFs for free, plus a few cheap signal-specific LFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.featurize import ColumnProfile
from repro.tabular.column import Column
from repro.tabular.dtypes import (
    is_integer_literal,
    looks_like_datetime,
    looks_like_embedded_number,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)
from repro.tools.base import InferenceTool
from repro.types import FeatureType

#: An LF returns a FeatureType vote or None (abstain).
LabelingFunction = Callable[[Column, ColumnProfile], "FeatureType | None"]

ABSTAIN = None


@dataclass(frozen=True)
class NamedLF:
    """A labeling function with a display name."""

    name: str
    fn: LabelingFunction

    def __call__(self, column: Column, profile: ColumnProfile):
        return self.fn(column, profile)


def lf_from_tool(tool: InferenceTool) -> NamedLF:
    """Wrap a rule/syntax tool as a (never-abstaining) labeling function."""

    def vote(column: Column, _profile: ColumnProfile):
        return tool.infer_column(column)

    return NamedLF(f"tool:{tool.name}", vote)


# -- signal-specific LFs (high precision, high abstention) -------------------
def _lf_url(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if samples and all(looks_like_url(s) for s in samples):
        return FeatureType.URL
    return ABSTAIN


def _lf_list(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if len(samples) >= 2 and all(looks_like_list(s) for s in samples):
        return FeatureType.LIST
    return ABSTAIN


def _lf_datetime(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if samples and all(looks_like_datetime(s) for s in samples):
        return FeatureType.DATETIME
    return ABSTAIN


def _lf_embedded(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if len(samples) >= 2 and all(looks_like_embedded_number(s) for s in samples):
        return FeatureType.EMBEDDED_NUMBER
    return ABSTAIN


def _lf_unique_int_key(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if (
        samples
        and all(is_integer_literal(s) for s in samples)
        and profile.stats["pct_distinct"] > 0.999
        and profile.stats["total_values"] > 20
    ):
        return FeatureType.NOT_GENERALIZABLE
    return ABSTAIN


def _lf_mostly_missing(column: Column, profile: ColumnProfile):
    if profile.stats["pct_nans"] > 0.999:
        return FeatureType.NOT_GENERALIZABLE
    return ABSTAIN


def _lf_long_text(column: Column, profile: ColumnProfile):
    if profile.stats["mean_word_count"] > 6.0 and profile.stats[
        "mean_stopword_count"
    ] >= 1.0:
        return FeatureType.SENTENCE
    return ABSTAIN


def _lf_float_measure(column: Column, profile: ColumnProfile):
    samples = [s for s in profile.samples if s]
    if not samples:
        return ABSTAIN
    parsed = [try_parse_float(s) for s in samples]
    if all(v is not None for v in parsed) and any(
        "." in s for s in samples
    ):
        return FeatureType.NUMERIC
    return ABSTAIN


def _lf_name_id(column: Column, profile: ColumnProfile):
    name = profile.name.lower()
    if name.endswith("id") or name in ("index", "key", "uuid", "guid"):
        return FeatureType.NOT_GENERALIZABLE
    return ABSTAIN


def _lf_name_category(column: Column, profile: ColumnProfile):
    name = profile.name.lower()
    tokens = ("zip", "code", "gender", "state", "status", "category", "type",
              "class", "grade", "level")
    if any(token in name for token in tokens):
        return FeatureType.CATEGORICAL
    return ABSTAIN


def default_labeling_functions(include_tools: bool = True) -> list[NamedLF]:
    """The stock LF set: signal LFs + (optionally) the tool heuristics."""
    lfs = [
        NamedLF("url_samples", _lf_url),
        NamedLF("list_samples", _lf_list),
        NamedLF("datetime_samples", _lf_datetime),
        NamedLF("embedded_samples", _lf_embedded),
        NamedLF("unique_int_key", _lf_unique_int_key),
        NamedLF("mostly_missing", _lf_mostly_missing),
        NamedLF("long_text", _lf_long_text),
        NamedLF("float_measure", _lf_float_measure),
        NamedLF("name_id", _lf_name_id),
        NamedLF("name_category", _lf_name_category),
    ]
    if include_tools:
        from repro.tools import AutoGluonTool, RuleBaselineTool, TFDVTool

        lfs.extend(
            lf_from_tool(tool)
            for tool in (TFDVTool(), AutoGluonTool(), RuleBaselineTool())
        )
    return lfs
