"""Snuba-style automatic labeling-function synthesis.

The paper cites Snuba ("Automating Weak Supervision to Label Training
Data") alongside Snorkel.  Snuba's core move: instead of hand-writing LFs,
*synthesize* small high-precision heuristics from a labeled development set
and keep only those whose dev precision clears a bar.  Here each synthesized
LF is a one-vs-rest decision stump over a single descriptive statistic:
"if stat s <= t then vote class c, else abstain".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.featurize import ColumnProfile, LabeledDataset
from repro.core.stats import STAT_NAMES
from repro.tabular.column import Column
from repro.types import ALL_FEATURE_TYPES, FeatureType
from repro.weak.labeling_functions import NamedLF


@dataclass(frozen=True)
class StumpSpec:
    """One synthesized stump: vote ``label`` when stat crosses a threshold."""

    stat_index: int
    threshold: float
    direction: str  # "le" votes when stat <= threshold, "gt" when >
    label: FeatureType
    dev_precision: float
    dev_coverage: float

    @property
    def stat_name(self) -> str:
        return STAT_NAMES[self.stat_index]

    def fires(self, profile: ColumnProfile) -> bool:
        value = float(profile.stats_vector[self.stat_index])
        if self.direction == "le":
            return value <= self.threshold
        return value > self.threshold


def _candidate_thresholds(values: np.ndarray, max_candidates: int = 12):
    unique = np.unique(values)
    if unique.shape[0] <= 1:
        return np.empty(0)
    midpoints = (unique[:-1] + unique[1:]) / 2.0
    if midpoints.shape[0] <= max_candidates:
        return midpoints
    picks = np.linspace(0, midpoints.shape[0] - 1, max_candidates).astype(int)
    return midpoints[picks]


def synthesize_stumps(
    dev: LabeledDataset,
    min_precision: float = 0.9,
    min_coverage: float = 0.05,
    max_per_class: int = 3,
) -> list[StumpSpec]:
    """Find high-precision one-feature stumps on the dev set.

    For every (class, stat, threshold, direction) candidate whose dev
    precision ≥ ``min_precision`` and coverage ≥ ``min_coverage``, keep the
    best ``max_per_class`` per class by coverage.
    """
    stats = dev.stats_matrix()
    labels = dev.labels
    n = len(labels)
    specs: list[StumpSpec] = []
    for feature_type in ALL_FEATURE_TYPES:
        positives = np.array([label is feature_type for label in labels])
        if not positives.any():
            continue
        class_specs: list[StumpSpec] = []
        for stat_index in range(stats.shape[1]):
            column = stats[:, stat_index]
            for threshold in _candidate_thresholds(column):
                for direction in ("le", "gt"):
                    mask = (
                        column <= threshold
                        if direction == "le"
                        else column > threshold
                    )
                    covered = int(mask.sum())
                    if covered < max(1, int(min_coverage * n)):
                        continue
                    precision = float(positives[mask].mean())
                    if precision < min_precision:
                        continue
                    class_specs.append(
                        StumpSpec(
                            stat_index=stat_index,
                            threshold=float(threshold),
                            direction=direction,
                            label=feature_type,
                            dev_precision=precision,
                            dev_coverage=covered / n,
                        )
                    )
        class_specs.sort(key=lambda s: (-s.dev_coverage, -s.dev_precision))
        specs.extend(class_specs[:max_per_class])
    return specs


def stump_to_lf(spec: StumpSpec) -> NamedLF:
    """Wrap a synthesized stump as a labeling function."""

    def vote(_column: Column, profile: ColumnProfile):
        return spec.label if spec.fires(profile) else None

    name = (
        f"stump:{spec.label.short}:{spec.stat_name}"
        f"{'<=' if spec.direction == 'le' else '>'}{spec.threshold:.3g}"
    )
    return NamedLF(name, vote)


def synthesize_labeling_functions(
    dev: LabeledDataset,
    min_precision: float = 0.9,
    min_coverage: float = 0.05,
    max_per_class: int = 3,
) -> list[NamedLF]:
    """Snuba-style end-to-end: dev set in, labeling functions out."""
    return [
        stump_to_lf(spec)
        for spec in synthesize_stumps(
            dev,
            min_precision=min_precision,
            min_coverage=min_coverage,
            max_per_class=max_per_class,
        )
    ]
