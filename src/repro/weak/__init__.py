"""Weak supervision (paper §6.2 future work): LFs, label models, amplification."""

from repro.weak.amplify import AmplificationResult, amplify, select_confident
from repro.weak.label_model import (
    MajorityVote,
    WeakLabel,
    WeightedVote,
    lf_summary,
    vote_matrix,
)
from repro.weak.labeling_functions import (
    ABSTAIN,
    NamedLF,
    default_labeling_functions,
    lf_from_tool,
)
from repro.weak.synthesis import (
    StumpSpec,
    stump_to_lf,
    synthesize_labeling_functions,
    synthesize_stumps,
)

__all__ = [
    "ABSTAIN",
    "AmplificationResult",
    "MajorityVote",
    "NamedLF",
    "StumpSpec",
    "WeakLabel",
    "WeightedVote",
    "amplify",
    "default_labeling_functions",
    "lf_from_tool",
    "lf_summary",
    "select_confident",
    "stump_to_lf",
    "synthesize_labeling_functions",
    "synthesize_stumps",
    "vote_matrix",
]
