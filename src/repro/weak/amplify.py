"""Weak-supervision amplification: grow a labeled dataset without humans.

The paper's Section 6.2 proposes Snorkel/Snuba-style weak supervision "to
amplify labeled datasets and teach the ML models to learn better".  The
pipeline here:

1. fit a :class:`~repro.weak.label_model.WeightedVote` on a small labeled
   development set;
2. weak-label a large unlabeled corpus, keeping only confident,
   well-supported weak labels;
3. train a model on dev + weak labels and compare against dev-only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.featurize import ColumnProfile, LabeledDataset
from repro.core.models import RandomForestModel, TypeInferenceModel
from repro.tabular.column import Column
from repro.weak.label_model import WeakLabel, WeightedVote
from repro.weak.labeling_functions import NamedLF, default_labeling_functions


@dataclass
class AmplificationResult:
    """Outcome of one weak-supervision amplification run."""

    n_dev: int
    n_weakly_labeled: int
    n_abstained: int
    weak_label_accuracy: float  # vs hidden truth, when available
    dev_only_model: TypeInferenceModel
    amplified_model: TypeInferenceModel


def select_confident(
    weak_labels: list[WeakLabel],
    min_votes: int = 2,
    min_confidence: float = 0.6,
) -> list[int]:
    """Indices of weak labels trusted enough to train on."""
    return [
        i
        for i, weak in enumerate(weak_labels)
        if weak.label is not None
        and weak.n_votes >= min_votes
        and weak.confidence >= min_confidence
    ]


def amplify(
    dev: LabeledDataset,
    dev_columns: list[Column],
    unlabeled_profiles: list[ColumnProfile],
    unlabeled_columns: list[Column],
    lfs: list[NamedLF] | None = None,
    min_votes: int = 2,
    min_confidence: float = 0.6,
    n_estimators: int = 40,
    random_state: int = 0,
) -> AmplificationResult:
    """Train dev-only and dev+weak models; return both for comparison.

    ``unlabeled_profiles`` may carry hidden truth labels (synthetic corpora
    do) — they are *not* used for training, only to report the weak-label
    accuracy.
    """
    if lfs is None:
        lfs = default_labeling_functions()

    label_model = WeightedVote(lfs).fit(dev_columns, dev.profiles, dev.labels)
    weak_labels = label_model.predict(unlabeled_columns, unlabeled_profiles)
    keep = select_confident(weak_labels, min_votes, min_confidence)

    hidden_truth = [p.label for p in unlabeled_profiles]
    n_checkable = sum(
        1 for i in keep if hidden_truth[i] is not None
    )
    weak_accuracy = (
        sum(
            1
            for i in keep
            if hidden_truth[i] is not None
            and weak_labels[i].label == hidden_truth[i]
        )
        / n_checkable
        if n_checkable
        else 0.0
    )

    dev_only = RandomForestModel(
        n_estimators=n_estimators, random_state=random_state
    )
    dev_only.fit(dev)

    amplified_profiles = list(dev.profiles)
    for i in keep:
        profile = unlabeled_profiles[i]
        relabeled = ColumnProfile(
            name=profile.name,
            samples=list(profile.samples),
            stats=profile.stats,
            source_file=profile.source_file,
            label=weak_labels[i].label,
        )
        amplified_profiles.append(relabeled)
    amplified_dataset = LabeledDataset(amplified_profiles)
    amplified = RandomForestModel(
        n_estimators=n_estimators, random_state=random_state
    )
    amplified.fit(amplified_dataset)

    return AmplificationResult(
        n_dev=len(dev),
        n_weakly_labeled=len(keep),
        n_abstained=sum(1 for w in weak_labels if w.label is None),
        weak_label_accuracy=weak_accuracy,
        dev_only_model=dev_only,
        amplified_model=amplified,
    )
