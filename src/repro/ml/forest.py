"""Random forests built on the CART trees in :mod:`repro.ml.tree`.

The paper's best type-inference model is a Random Forest (grid: NumEstimator
in {5,25,50,75,100}, MaxDepth in {5,10,25,50,100}); downstream models also use
Random Forests for both classification and regression.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)
from repro.ml.preprocessing import LabelEncoder
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    def _bootstrap_index(self, n_samples: int, rng: np.random.Generator):
        if self.bootstrap:
            return rng.integers(0, n_samples, size=n_samples)
        return np.arange(n_samples)

    def _tree_params(self) -> dict:
        return {
            "max_depth": self.max_depth,
            "min_samples_split": self.min_samples_split,
            "min_samples_leaf": self.min_samples_leaf,
            "max_features": self.max_features,
            "max_thresholds": self.max_thresholds,
        }


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged CART classifiers with per-node feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 25,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        max_thresholds: int = 24,
        bootstrap: bool = True,
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestClassifier":
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        rng = np.random.default_rng(self.random_state)
        self.estimators_: list[DecisionTreeClassifier] = []
        for tree_index in range(self.n_estimators):
            index = self._bootstrap_index(X.shape[0], rng)
            tree = DecisionTreeClassifier(
                random_state=int(rng.integers(0, 2**31)), **self._tree_params()
            )
            # Fit on codes directly so every tree shares the class ordering.
            tree._encoder = self._encoder
            tree.classes_ = self.classes_
            sub_X, sub_y = X[index], codes[index]
            tree._fit_tree(sub_X, sub_y, len(self.classes_))
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_array(X)
        probs = np.zeros((X.shape[0], len(self.classes_)))
        for tree in self.estimators_:
            tree_probs = tree._leaf_values(X)
            if tree_probs.shape[1] < probs.shape[1]:  # pragma: no cover - guard
                padded = np.zeros_like(probs)
                padded[:, : tree_probs.shape[1]] = tree_probs
                tree_probs = padded
            probs += tree_probs
        return probs / len(self.estimators_)

    def predict(self, X) -> list:
        probs = self.predict_proba(X)
        return self._encoder.inverse_transform(np.argmax(probs, axis=1))

    def feature_importances(self, X, y, n_repeats: int = 1, random_state: int = 0):
        """Permutation importance (accuracy drop per shuffled feature)."""
        X, y = check_X_y(X, y)
        baseline = self.score(X, y)
        rng = np.random.default_rng(random_state)
        importances = np.zeros(X.shape[1])
        for feature in range(X.shape[1]):
            drops = []
            for _ in range(n_repeats):
                shuffled = X.copy()
                rng.shuffle(shuffled[:, feature])
                drops.append(baseline - self.score(shuffled, y))
            importances[feature] = float(np.mean(drops))
        return importances


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged CART regressors with per-node feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 100,
        max_depth: int = 25,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = "sqrt",
        max_thresholds: int = 24,
        bootstrap: bool = True,
        random_state: int = 0,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.bootstrap = bootstrap
        self.random_state = random_state

    def fit(self, X, y) -> "RandomForestRegressor":
        X, y = check_X_y(X, y)
        y = y.astype(float)
        rng = np.random.default_rng(self.random_state)
        self.estimators_: list[DecisionTreeRegressor] = []
        for tree_index in range(self.n_estimators):
            index = self._bootstrap_index(X.shape[0], rng)
            tree = DecisionTreeRegressor(
                random_state=int(rng.integers(0, 2**31)), **self._tree_params()
            )
            tree.fit(X[index], y[index])
            self.estimators_.append(tree)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimators_")
        X = check_array(X)
        total = np.zeros(X.shape[0])
        for tree in self.estimators_:
            total += tree.predict(X)
        return total / len(self.estimators_)
