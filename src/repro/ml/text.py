"""Text vectorizers: char/word n-gram counts, TF-IDF, feature hashing.

The benchmark featurizes attribute names and sample values with character
bigrams (X2_name, X2_sample) and routes Sentence columns through TF-IDF in
the downstream suite (Section 5.3).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.ml.base import BaseEstimator

_WORD_SPLIT_CHARS = ".,;:!?()[]{}\"'`/\\|<>@#$%^&*+=~"


def tokenize_words(text: str) -> list[str]:
    """Lowercased word tokens with punctuation stripped."""
    cleaned = text.lower()
    for ch in _WORD_SPLIT_CHARS:
        cleaned = cleaned.replace(ch, " ")
    return [token for token in cleaned.split() if token]


def char_ngrams(text: str, n: int) -> list[str]:
    """Character n-grams of ``text`` (lowercased, with boundary markers)."""
    padded = f"^{text.lower()}$"
    if len(padded) < n:
        return [padded]
    return [padded[i : i + n] for i in range(len(padded) - n + 1)]


def word_ngrams(text: str, n: int) -> list[str]:
    """Word n-grams (n consecutive word tokens joined by a space)."""
    tokens = tokenize_words(text)
    if len(tokens) < n:
        return [" ".join(tokens)] if tokens else []
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]


class CountVectorizer(BaseEstimator):
    """Bag of n-grams with a fitted vocabulary capped by frequency."""

    def __init__(
        self,
        analyzer: str = "char",
        ngram: int = 2,
        max_features: int = 1000,
        binary: bool = False,
        min_df: int = 1,
    ):
        if analyzer not in ("char", "word"):
            raise ValueError("analyzer must be 'char' or 'word'")
        self.analyzer = analyzer
        self.ngram = ngram
        self.max_features = max_features
        self.binary = binary
        self.min_df = min_df

    def _analyze(self, text: str) -> list[str]:
        if self.analyzer == "char":
            return char_ngrams(text, self.ngram)
        return word_ngrams(text, self.ngram)

    def fit(self, texts: Sequence[str]) -> "CountVectorizer":
        doc_freq: dict[str, int] = {}
        for text in texts:
            for gram in set(self._analyze(text)):
                doc_freq[gram] = doc_freq.get(gram, 0) + 1
        eligible = [
            (gram, count) for gram, count in doc_freq.items() if count >= self.min_df
        ]
        ranked = sorted(eligible, key=lambda item: (-item[1], item[0]))
        self.vocabulary_ = {
            gram: i for i, (gram, _count) in enumerate(ranked[: self.max_features])
        }
        self.document_frequency_ = {
            gram: doc_freq[gram] for gram in self.vocabulary_
        }
        self._n_documents = len(texts)
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        self._check_fitted("vocabulary_")
        out = np.zeros((len(texts), len(self.vocabulary_)), dtype=float)
        for i, text in enumerate(texts):
            for gram in self._analyze(text):
                j = self.vocabulary_.get(gram)
                if j is not None:
                    if self.binary:
                        out[i, j] = 1.0
                    else:
                        out[i, j] += 1.0
        return out

    def fit_transform(self, texts: Sequence[str]) -> np.ndarray:
        return self.fit(texts).transform(texts)


class TfidfVectorizer(CountVectorizer):
    """TF-IDF over word (or char) n-grams, with L2 row normalization."""

    def __init__(
        self,
        analyzer: str = "word",
        ngram: int = 1,
        max_features: int = 1000,
        min_df: int = 1,
    ):
        super().__init__(
            analyzer=analyzer,
            ngram=ngram,
            max_features=max_features,
            binary=False,
            min_df=min_df,
        )

    def fit(self, texts: Sequence[str]) -> "TfidfVectorizer":
        super().fit(texts)
        n_docs = max(self._n_documents, 1)
        self.idf_ = np.array(
            [
                math.log((1 + n_docs) / (1 + self.document_frequency_[gram])) + 1.0
                for gram in sorted(self.vocabulary_, key=self.vocabulary_.get)
            ]
        )
        return self

    def transform(self, texts: Sequence[str]) -> np.ndarray:
        self._check_fitted("idf_")
        counts = super().transform(texts)
        weighted = counts * self.idf_[None, :]
        norms = np.sqrt(np.sum(weighted * weighted, axis=1, keepdims=True))
        norms[norms == 0.0] = 1.0
        return weighted / norms


class HashingVectorizer(BaseEstimator):
    """Stateless n-gram hashing into a fixed number of buckets.

    Used for the benchmark's bigram features so the feature space is stable
    across folds and corpora (no fitted vocabulary to leak).  Signed hashing
    keeps collisions unbiased.
    """

    def __init__(self, analyzer: str = "char", ngram: int = 2, n_features: int = 256):
        if analyzer not in ("char", "word"):
            raise ValueError("analyzer must be 'char' or 'word'")
        self.analyzer = analyzer
        self.ngram = ngram
        self.n_features = n_features

    def _analyze(self, text: str) -> list[str]:
        if self.analyzer == "char":
            return char_ngrams(text, self.ngram)
        return word_ngrams(text, self.ngram)

    def transform(self, texts: Iterable[str]) -> np.ndarray:
        texts = list(texts)
        out = np.zeros((len(texts), self.n_features), dtype=float)
        for i, text in enumerate(texts):
            for gram in self._analyze(text):
                digest = _stable_hash(gram)
                bucket = digest % self.n_features
                sign = 1.0 if (digest >> 32) & 1 else -1.0
                out[i, bucket] += sign
        return out

    def fit(self, texts: Iterable[str]) -> "HashingVectorizer":
        return self  # stateless

    def fit_transform(self, texts: Iterable[str]) -> np.ndarray:
        return self.transform(texts)


def _stable_hash(text: str) -> int:
    """64-bit FNV-1a hash (stable across processes, unlike ``hash``)."""
    value = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        value ^= byte
        value = (value * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return value
