"""Dataset splitting, cross-validation, and grid search.

Implements the paper's methodology (Section 4.1): 80:20 train/held-out-test
split, 5-fold nested cross-validation with a random fourth of each training
fold used for validation, grid search over the Appendix B grids, and the
leave-datafile-out protocol (GroupKFold keyed by source file).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence

import numpy as np

from repro.ml.base import BaseEstimator, clone


def train_test_split(
    *arrays, test_size: float = 0.2, random_state: int = 0, stratify=None
):
    """Split any number of same-length arrays into train/test parts.

    Returns ``a_train, a_test, b_train, b_test, ...`` in sklearn order.
    """
    n = len(arrays[0])
    for arr in arrays:
        if len(arr) != n:
            raise ValueError("all arrays must share the same length")
    rng = np.random.default_rng(random_state)
    if stratify is not None:
        labels = np.asarray(stratify)
        test_index: list[int] = []
        for label in sorted(set(labels.tolist()), key=str):
            members = np.nonzero(labels == label)[0]
            members = rng.permutation(members)
            n_test = max(1, round(test_size * len(members))) if len(members) > 1 else 0
            test_index.extend(members[:n_test].tolist())
        test_mask = np.zeros(n, dtype=bool)
        test_mask[test_index] = True
    else:
        order = rng.permutation(n)
        n_test = max(1, round(test_size * n))
        test_mask = np.zeros(n, dtype=bool)
        test_mask[order[:n_test]] = True
    out = []
    for arr in arrays:
        indexable = np.asarray(arr, dtype=object) if isinstance(arr, list) else arr
        train = _take(indexable, ~test_mask)
        test = _take(indexable, test_mask)
        out.extend([train, test])
    return tuple(out)


def _take(array, mask: np.ndarray):
    if isinstance(array, np.ndarray) and array.dtype != object:
        return array[mask]
    values = list(array) if not isinstance(array, np.ndarray) else array.tolist()
    return [values[i] for i in np.nonzero(mask)[0]]


class KFold:
    """Plain k-fold splitter over shuffled indices."""

    def __init__(self, n_splits: int = 5, random_state: int = 0, shuffle: bool = True):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.random_state = random_state
        self.shuffle = shuffle

    def split(self, n_samples: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        index = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            index = rng.permutation(index)
        folds = np.array_split(index, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train), np.sort(test)


class StratifiedKFold:
    """k-fold with per-class round-robin assignment (balanced folds)."""

    def __init__(self, n_splits: int = 5, random_state: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, y: Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        labels = np.asarray(y, dtype=object)
        n = len(labels)
        rng = np.random.default_rng(self.random_state)
        fold_of = np.zeros(n, dtype=np.int64)
        for label in sorted(set(labels.tolist()), key=str):
            members = rng.permutation(np.nonzero(labels == label)[0])
            for slot, sample in enumerate(members):
                fold_of[sample] = slot % self.n_splits
        for i in range(self.n_splits):
            test = np.nonzero(fold_of == i)[0]
            train = np.nonzero(fold_of != i)[0]
            yield train, test


class GroupKFold:
    """k-fold where all samples sharing a group land in the same fold.

    This is the paper's leave-datafile-out protocol: groups are source data
    files, so test folds contain only columns from unseen files.
    """

    def __init__(self, n_splits: int = 5, random_state: int = 0):
        if n_splits < 2:
            raise ValueError("n_splits must be >= 2")
        self.n_splits = n_splits
        self.random_state = random_state

    def split(self, groups: Sequence) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        group_array = np.asarray(groups, dtype=object)
        unique = sorted(set(group_array.tolist()), key=str)
        if len(unique) < self.n_splits:
            raise ValueError(
                f"{len(unique)} groups cannot fill {self.n_splits} folds"
            )
        rng = np.random.default_rng(self.random_state)
        order = rng.permutation(len(unique))
        fold_of_group = {
            unique[g]: i % self.n_splits for i, g in enumerate(order)
        }
        fold_of = np.array([fold_of_group[g] for g in group_array.tolist()])
        for i in range(self.n_splits):
            test = np.nonzero(fold_of == i)[0]
            train = np.nonzero(fold_of != i)[0]
            yield train, test


def cross_val_score(
    estimator: BaseEstimator,
    X,
    y,
    cv: int = 5,
    random_state: int = 0,
) -> np.ndarray:
    """Stratified k-fold accuracy (or negative RMSE for regressors)."""
    X = np.asarray(X, dtype=float)
    y_list = list(y)
    splitter = StratifiedKFold(n_splits=cv, random_state=random_state)
    scores = []
    for train, test in splitter.split(y_list):
        model = clone(estimator)
        model.fit(X[train], [y_list[i] for i in train])
        scores.append(model.score(X[test], [y_list[i] for i in test]))
    return np.array(scores)


class GridSearchCV:
    """Exhaustive grid search with held-out-validation or k-fold scoring.

    ``validation_fraction`` mode mirrors the paper: "a random fourth of the
    examples in a training fold being used for validation during
    hyper-parameter tuning".  Set ``cv`` to an int for k-fold scoring instead.

    ``candidate_memo`` (any object with ``get(params) -> float | None`` and
    ``put(params, score)``) short-circuits a candidate's fit/score when a
    prior run already computed it; grid search is deterministic, so a memo
    hit reproduces the computed score exactly.
    """

    def __init__(
        self,
        estimator: BaseEstimator,
        param_grid: dict[str, Sequence],
        cv: int | None = None,
        validation_fraction: float = 0.25,
        random_state: int = 0,
        candidate_memo=None,
    ):
        self.estimator = estimator
        self.param_grid = param_grid
        self.cv = cv
        self.validation_fraction = validation_fraction
        self.random_state = random_state
        self.candidate_memo = candidate_memo

    def _candidates(self) -> Iterator[dict]:
        keys = sorted(self.param_grid)
        for combo in itertools.product(*(self.param_grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def fit(self, X, y) -> "GridSearchCV":
        X = np.asarray(X, dtype=float)
        y_list = list(y)
        results = []
        for params in self._candidates():
            if self.candidate_memo is not None:
                cached = self.candidate_memo.get(params)
                if cached is not None:
                    results.append((float(cached), params))
                    continue
            if self.cv is not None:
                model = clone(self.estimator).set_params(**params)
                score = float(
                    np.mean(
                        cross_val_score(
                            model, X, y_list, cv=self.cv,
                            random_state=self.random_state,
                        )
                    )
                )
            else:
                x_tr, x_val, y_tr, y_val = train_test_split(
                    X,
                    y_list,
                    test_size=self.validation_fraction,
                    random_state=self.random_state,
                    stratify=y_list if _is_classifier(self.estimator) else None,
                )
                model = clone(self.estimator).set_params(**params)
                model.fit(x_tr, y_tr)
                score = float(model.score(x_val, y_val))
            if self.candidate_memo is not None:
                self.candidate_memo.put(params, score)
            results.append((score, params))
        results.sort(key=lambda item: -item[0])
        self.best_score_, self.best_params_ = results[0]
        self.cv_results_ = results
        self.best_estimator_ = clone(self.estimator).set_params(**self.best_params_)
        self.best_estimator_.fit(X, y_list)
        return self

    def predict(self, X):
        return self.best_estimator_.predict(X)

    def score(self, X, y) -> float:
        return self.best_estimator_.score(X, y)


def _is_classifier(estimator: BaseEstimator) -> bool:
    return getattr(estimator, "_estimator_kind", "") == "classifier"
