"""k-nearest-neighbor classification with pluggable distances.

Supports both plain euclidean k-NN on feature matrices and the paper's
task-adapted k-NN (Section 3.3.3) whose distance between columns is

    d = ED(X_name) + gamma * EC(X_stats)

(edit distance between attribute names plus weighted euclidean distance
between descriptive-stats vectors).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from repro.ml.distances import (
    euclidean_many_vs_many,
    euclidean_one_vs_many,
    levenshtein_many_vs_many,
    levenshtein_many_vs_many_banded,
    levenshtein_one_vs_many,
    levenshtein_one_vs_many_banded,
    pairwise_euclidean,
)
from repro.obs import telemetry


def _vote_fractions(
    distances: np.ndarray, y: Sequence, classes: Sequence, k: int
) -> np.ndarray:
    """Neighbor-vote fractions per query row of a (q, n_train) matrix."""
    index = {label: i for i, label in enumerate(classes)}
    y_codes = np.array([index[label] for label in y], dtype=np.intp)
    nearest = np.argsort(distances, axis=1, kind="stable")[:, :k]
    probs = np.zeros((distances.shape[0], len(classes)))
    rows = np.repeat(np.arange(distances.shape[0]), nearest.shape[1])
    np.add.at(probs, (rows, y_codes[nearest].ravel()), 1.0)
    return probs / k


def _vote(labels: Sequence, distances: np.ndarray) -> object:
    """Majority vote; ties broken by the nearer neighbor."""
    counts = Counter(labels)
    top = max(counts.values())
    tied = {label for label, count in counts.items() if count == top}
    if len(tied) == 1:
        return next(iter(tied))
    for label, _dist in sorted(zip(labels, distances), key=lambda item: item[1]):
        if label in tied:
            return label
    return labels[0]  # pragma: no cover - unreachable


class KNeighborsClassifier(BaseEstimator, ClassifierMixin):
    """Plain k-NN on a numeric feature matrix (euclidean distance)."""

    def __init__(self, n_neighbors: int = 5):
        self.n_neighbors = n_neighbors

    def fit(self, X, y) -> "KNeighborsClassifier":
        X, y = check_X_y(X, y)
        self._X = X
        self._y = list(y)
        self.classes_ = sorted(set(self._y), key=str)
        return self

    def predict(self, X) -> list:
        self._check_fitted("_X")
        X = check_array(X)
        with telemetry.span(
            "knn.predict", n_queries=X.shape[0], n_train=len(self._y)
        ) as sp:
            distances = pairwise_euclidean(X, self._X)
            k = min(self.n_neighbors, len(self._y))
            order = np.argsort(distances, axis=1, kind="stable")[:, :k]
            out = [
                _vote([self._y[i] for i in nearest], row[nearest])
                for nearest, row in zip(order, distances)
            ]
        if telemetry.enabled:
            telemetry.count("knn.queries", X.shape[0])
            telemetry.observe("knn.batch_s", sp.wall_s)
        return out

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("_X")
        X = check_array(X)
        distances = pairwise_euclidean(X, self._X)
        k = min(self.n_neighbors, len(self._y))
        return _vote_fractions(distances, self._y, self.classes_, k)


class NameStatsKNN(BaseEstimator, ClassifierMixin):
    """The paper's k-NN: weighted edit + euclidean distance over columns.

    ``fit`` takes attribute names, standardized stats vectors, and labels.
    ``gamma`` weights the stats term; both ``n_neighbors`` (1..10) and
    ``gamma`` ({1e-3 .. 1e3}) are tuned by grid search in the paper.

    ``name_cap`` routes the edit-distance term through the banded,
    early-exit kernel: name distances beyond the cap are clipped to
    ``cap + 1``, which leaves every pair whose true edit distance is within
    the cap untouched (and therefore leaves predictions unchanged whenever
    the selected neighbors' name distances are within the cap).  ``None``
    (the default) keeps the exact kernel.
    """

    def __init__(
        self, n_neighbors: int = 5, gamma: float = 1.0, use_stats: bool = True,
        use_name: bool = True, name_cap: int | None = None,
    ):
        if not (use_stats or use_name):
            raise ValueError("at least one of use_stats/use_name must be set")
        if name_cap is not None and name_cap < 0:
            raise ValueError("name_cap must be None or >= 0")
        self.n_neighbors = n_neighbors
        self.gamma = gamma
        self.use_stats = use_stats
        self.use_name = use_name
        self.name_cap = name_cap

    def fit(
        self, names: Sequence[str], stats: np.ndarray, y: Sequence
    ) -> "NameStatsKNN":
        if len(names) != len(y):
            raise ValueError("names and y must have equal length")
        self._names = [str(n) for n in names]
        self._stats = np.asarray(stats, dtype=float)
        if self._stats.shape[0] != len(self._names):
            raise ValueError("stats and names must have equal length")
        self._y = list(y)
        self.classes_ = sorted(set(self._y), key=str)
        return self

    def _distances(self, name: str, stats_row: np.ndarray) -> np.ndarray:
        total = np.zeros(len(self._y))
        if self.use_name:
            if self.name_cap is not None:
                edit = levenshtein_one_vs_many_banded(
                    name, self._names, self.name_cap
                )
            else:
                edit = levenshtein_one_vs_many(name, self._names)
            total += edit.astype(float)
        if self.use_stats:
            total += self.gamma * euclidean_one_vs_many(stats_row, self._stats)
        return total

    def distance_matrix(
        self, names: Sequence[str], stats: np.ndarray
    ) -> np.ndarray:
        """Weighted distances from every query to every training column.

        Bit-identical to stacking :meth:`_distances` per query: both terms
        broadcast the same per-row kernels over the full train matrix, and
        repeated query names share one edit-distance computation.
        """
        stats = np.asarray(stats, dtype=float)
        total = np.zeros((len(names), len(self._y)))
        if self.use_name:
            name_strings = [str(n) for n in names]
            if self.name_cap is not None:
                edit = levenshtein_many_vs_many_banded(
                    name_strings, self._names, self.name_cap
                )
            else:
                edit = levenshtein_many_vs_many(name_strings, self._names)
            total += edit.astype(float)
        if self.use_stats:
            total += self.gamma * euclidean_many_vs_many(stats, self._stats)
        return total

    def predict(self, names: Sequence[str], stats: np.ndarray) -> list:
        self._check_fitted("_names")
        k = min(self.n_neighbors, len(self._y))
        with telemetry.span(
            "knn.name_stats.predict", n_queries=len(names), n_train=len(self._y)
        ) as sp:
            distances = self.distance_matrix(names, stats)
            order = np.argsort(distances, axis=1, kind="stable")[:, :k]
            out = [
                _vote([self._y[i] for i in nearest], row[nearest])
                for nearest, row in zip(order, distances)
            ]
        if telemetry.enabled:
            telemetry.count("knn.queries", len(names))
            telemetry.observe("knn.batch_s", sp.wall_s)
        return out

    def predict_proba(
        self, names: Sequence[str], stats: np.ndarray
    ) -> np.ndarray:
        """Neighbor-vote fractions over ``classes_`` per query."""
        self._check_fitted("_names")
        k = min(self.n_neighbors, len(self._y))
        distances = self.distance_matrix(names, stats)
        return _vote_fractions(distances, self._y, self.classes_, k)

    def score(self, names: Sequence[str], stats: np.ndarray, y: Sequence) -> float:
        pred = self.predict(names, stats)
        return float(np.mean(np.asarray(pred, dtype=object) == np.asarray(y, dtype=object)))
