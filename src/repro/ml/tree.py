"""CART decision trees (classification with Gini, regression with MSE).

Implemented from scratch on numpy.  Split search is vectorized: for each
candidate feature the gain of up to ``max_thresholds`` quantile thresholds is
evaluated in one broadcasted pass, which keeps pure-Python overhead per node
small enough for random forests at benchmark scale.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)
from repro.ml.preprocessing import LabelEncoder

_LEAF = -1


class _TreeBuilder:
    """Grows one CART tree; shared by the classifier and regressor."""

    def __init__(
        self,
        is_classifier: bool,
        n_classes: int,
        max_depth: int,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        max_thresholds: int,
        rng: np.random.Generator,
    ):
        self.is_classifier = is_classifier
        self.n_classes = n_classes
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.rng = rng
        # flat tree arrays, grown dynamically
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.value: list[np.ndarray] = []

    def build(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.is_classifier:
            onehot = np.zeros((y.shape[0], self.n_classes))
            onehot[np.arange(y.shape[0]), y] = 1.0
        else:
            onehot = None
        stack = [(np.arange(X.shape[0]), 0, None, False)]
        while stack:
            index, depth, parent, is_right = stack.pop()
            node_id = self._new_node(y, index)
            if parent is not None:
                if is_right:
                    self.right[parent] = node_id
                else:
                    self.left[parent] = node_id
            if (
                depth >= self.max_depth
                or index.shape[0] < self.min_samples_split
                or self._is_pure(y, index)
            ):
                continue
            split = self._best_split(X, y, onehot, index)
            if split is None:
                continue
            feature, threshold, left_index, right_index = split
            self.feature[node_id] = feature
            self.threshold[node_id] = threshold
            stack.append((right_index, depth + 1, node_id, True))
            stack.append((left_index, depth + 1, node_id, False))

    def _new_node(self, y: np.ndarray, index: np.ndarray) -> int:
        node_id = len(self.feature)
        self.feature.append(_LEAF)
        self.threshold.append(0.0)
        self.left.append(_LEAF)
        self.right.append(_LEAF)
        if self.is_classifier:
            counts = np.bincount(y[index], minlength=self.n_classes).astype(float)
            self.value.append(counts / counts.sum())
        else:
            self.value.append(np.array([float(np.mean(y[index]))]))
        return node_id

    def _is_pure(self, y: np.ndarray, index: np.ndarray) -> bool:
        sub = y[index]
        if self.is_classifier:
            return bool(np.all(sub == sub[0]))
        return bool(np.all(sub == sub[0]))

    def _candidate_thresholds(self, values: np.ndarray) -> np.ndarray:
        unique = np.unique(values)
        if unique.shape[0] < 2:
            return np.empty(0)
        midpoints = (unique[:-1] + unique[1:]) / 2.0
        if midpoints.shape[0] <= self.max_thresholds:
            return midpoints
        quantiles = np.linspace(0, midpoints.shape[0] - 1, self.max_thresholds)
        return midpoints[quantiles.astype(int)]

    def _best_split(self, X, y, onehot, index):
        n = index.shape[0]
        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            features = self.rng.choice(n_features, self.max_features, replace=False)
        else:
            features = np.arange(n_features)

        best_gain = 1e-12
        best = None
        x_node = X[index]
        y_node = y[index]
        if self.is_classifier:
            onehot_node = onehot[index]
            parent_impurity = _gini(np.sum(onehot_node, axis=0))
        else:
            parent_impurity = float(np.var(y_node))
            y_float = y_node.astype(float)

        for feature in features:
            values = x_node[:, feature]
            thresholds = self._candidate_thresholds(values)
            if thresholds.shape[0] == 0:
                continue
            mask = values[:, None] <= thresholds[None, :]  # (n, t)
            n_left = mask.sum(axis=0).astype(float)
            n_right = n - n_left
            valid = (n_left >= self.min_samples_leaf) & (
                n_right >= self.min_samples_leaf
            )
            if not np.any(valid):
                continue
            if self.is_classifier:
                left_counts = onehot_node.T @ mask  # (classes, t)
                total = np.sum(onehot_node, axis=0)[:, None]
                right_counts = total - left_counts
                imp_left = _gini_columns(left_counts, n_left)
                imp_right = _gini_columns(right_counts, n_right)
            else:
                sum_left = y_float @ mask
                sumsq_left = (y_float * y_float) @ mask
                sum_total = float(y_float.sum())
                sumsq_total = float((y_float * y_float).sum())
                imp_left = _variance_columns(sum_left, sumsq_left, n_left)
                imp_right = _variance_columns(
                    sum_total - sum_left, sumsq_total - sumsq_left, n_right
                )
            child = (n_left * imp_left + n_right * imp_right) / n
            gain = parent_impurity - child
            gain[~valid] = -np.inf
            t_best = int(np.argmax(gain))
            if gain[t_best] > best_gain:
                best_gain = float(gain[t_best])
                best = (int(feature), float(thresholds[t_best]), mask[:, t_best])

        if best is None:
            return None
        feature, threshold, left_mask = best
        return feature, threshold, index[left_mask], index[~left_mask]


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    probs = counts / total
    return float(1.0 - np.sum(probs * probs))


def _gini_columns(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
    """Gini impurity per threshold column; counts is (classes, t)."""
    safe = np.where(totals > 0, totals, 1.0)
    probs = counts / safe[None, :]
    return 1.0 - np.sum(probs * probs, axis=0)


def _variance_columns(sums, sumsqs, totals) -> np.ndarray:
    safe = np.where(totals > 0, totals, 1.0)
    mean = sums / safe
    return np.maximum(sumsqs / safe - mean * mean, 0.0)


class _BaseDecisionTree(BaseEstimator):
    def _fit_tree(self, X: np.ndarray, y_codes: np.ndarray, n_classes: int) -> None:
        rng = np.random.default_rng(self.random_state)
        max_features = self._resolve_max_features(X.shape[1])
        builder = _TreeBuilder(
            is_classifier=self._estimator_kind == "classifier",
            n_classes=n_classes,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=max_features,
            max_thresholds=self.max_thresholds,
            rng=rng,
        )
        builder.build(X, y_codes)
        self._feature = np.array(builder.feature, dtype=np.int64)
        self._threshold = np.array(builder.threshold, dtype=float)
        self._left = np.array(builder.left, dtype=np.int64)
        self._right = np.array(builder.right, dtype=np.int64)
        self._value = np.stack(builder.value)

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if self.max_features == "log2":
            return max(1, int(np.log2(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"bad max_features: {self.max_features!r}")

    def _leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Route every row to its leaf; returns the per-row value vectors."""
        self._check_fitted("_feature")
        n = X.shape[0]
        node = np.zeros(n, dtype=np.int64)
        active = self._feature[node] != _LEAF
        while np.any(active):
            idx = np.nonzero(active)[0]
            current = node[idx]
            go_left = (
                X[idx, self._feature[current]] <= self._threshold[current]
            )
            node[idx] = np.where(
                go_left, self._left[current], self._right[current]
            )
            active = self._feature[node] != _LEAF
        return self._value[node]

    @property
    def n_nodes_(self) -> int:
        self._check_fitted("_feature")
        return int(self._feature.shape[0])

    @property
    def depth_(self) -> int:
        self._check_fitted("_feature")
        depth = np.zeros(self.n_nodes_, dtype=np.int64)
        for node in range(self.n_nodes_):
            for child in (self._left[node], self._right[node]):
                if child != _LEAF:
                    depth[child] = depth[node] + 1
        return int(depth.max()) if self.n_nodes_ else 0


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classifier with Gini impurity and quantile-capped thresholds."""

    def __init__(
        self,
        max_depth: int = 25,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        max_thresholds: int = 24,
        random_state: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeClassifier":
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        self._fit_tree(X, codes, len(self.classes_))
        return self

    def predict_proba(self, X) -> np.ndarray:
        X = check_array(X)
        return self._leaf_values(X)

    def predict(self, X) -> list:
        probs = self.predict_proba(X)
        return self._encoder.inverse_transform(np.argmax(probs, axis=1))


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regressor with variance reduction."""

    def __init__(
        self,
        max_depth: int = 25,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | str | None = None,
        max_thresholds: int = 24,
        random_state: int = 0,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def fit(self, X, y) -> "DecisionTreeRegressor":
        X, y = check_X_y(X, y)
        self._fit_tree(X, y.astype(float), n_classes=0)
        return self

    def predict(self, X) -> np.ndarray:
        X = check_array(X)
        return self._leaf_values(X)[:, 0]
