"""Feature preprocessing: scaling, label encoding, one-hot encoding."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.ml.base import BaseEstimator, check_array


class StandardScaler(BaseEstimator):
    """Standardize features to zero mean / unit variance.

    Used by the paper for scale-sensitive models (RBF-SVM, logistic
    regression) on the descriptive-stats features (Section 3.3.2).
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0  # constant features pass through unscaled
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_array(X)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"X has {X.shape[1]} features, scaler was fit on {self.mean_.shape[0]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        self._check_fitted("mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class LabelEncoder(BaseEstimator):
    """Map arbitrary hashable labels to contiguous integer codes."""

    def __init__(self):
        pass

    def fit(self, y: Sequence) -> "LabelEncoder":
        self.classes_ = sorted(set(y), key=str)
        self._index = {label: i for i, label in enumerate(self.classes_)}
        return self

    def transform(self, y: Sequence) -> np.ndarray:
        self._check_fitted("classes_")
        try:
            return np.array([self._index[label] for label in y], dtype=np.int64)
        except KeyError as exc:
            raise ValueError(f"unseen label during transform: {exc}") from None

    def fit_transform(self, y: Sequence) -> np.ndarray:
        return self.fit(y).transform(y)

    def inverse_transform(self, codes) -> list:
        self._check_fitted("classes_")
        return [self.classes_[int(code)] for code in np.asarray(codes)]


class OneHotEncoder(BaseEstimator):
    """One-hot encode a column of category strings.

    ``max_categories`` caps the domain to the most frequent categories (rare
    categories and unseen values fall into an "other" bucket when
    ``handle_unknown='bucket'``, or a zero row when ``'ignore'``).
    """

    def __init__(self, max_categories: int = 1000, handle_unknown: str = "ignore"):
        if handle_unknown not in ("ignore", "bucket"):
            raise ValueError("handle_unknown must be 'ignore' or 'bucket'")
        self.max_categories = max_categories
        self.handle_unknown = handle_unknown

    def fit(self, values: Sequence[str | None]) -> "OneHotEncoder":
        counts: dict[str, int] = {}
        for value in values:
            key = "" if value is None else str(value)
            counts[key] = counts.get(key, 0) + 1
        ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        self.categories_ = [cat for cat, _count in ranked[: self.max_categories]]
        self._index = {cat: i for i, cat in enumerate(self.categories_)}
        return self

    @property
    def n_features_(self) -> int:
        self._check_fitted("categories_")
        extra = 1 if self.handle_unknown == "bucket" else 0
        return len(self.categories_) + extra

    def transform(self, values: Sequence[str | None]) -> np.ndarray:
        self._check_fitted("categories_")
        out = np.zeros((len(values), self.n_features_), dtype=float)
        bucket = len(self.categories_) if self.handle_unknown == "bucket" else None
        for i, value in enumerate(values):
            key = "" if value is None else str(value)
            j = self._index.get(key)
            if j is not None:
                out[i, j] = 1.0
            elif bucket is not None:
                out[i, bucket] = 1.0
        return out

    def fit_transform(self, values: Sequence[str | None]) -> np.ndarray:
        return self.fit(values).transform(values)
