"""Mini-ML substrate: the scikit-learn-shaped library the benchmark runs on.

scikit-learn is not available in this environment, so every estimator the
paper uses is implemented from scratch on numpy/scipy (see DESIGN.md).
"""

from repro.ml.base import BaseEstimator, NotFittedError, clone
from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.linear import LogisticRegression, RidgeRegression
from repro.ml.metrics import (
    BinarizedMetrics,
    accuracy_score,
    binarized_metrics,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    r2_score,
    recall_score,
    rmse,
)
from repro.ml.model_selection import (
    GridSearchCV,
    GroupKFold,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.neighbors import KNeighborsClassifier, NameStatsKNN
from repro.ml.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler
from repro.ml.svm import RBFSVM
from repro.ml.text import CountVectorizer, HashingVectorizer, TfidfVectorizer
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "BaseEstimator",
    "BinarizedMetrics",
    "CountVectorizer",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GridSearchCV",
    "GroupKFold",
    "HashingVectorizer",
    "KFold",
    "KNeighborsClassifier",
    "LabelEncoder",
    "LogisticRegression",
    "NameStatsKNN",
    "NotFittedError",
    "OneHotEncoder",
    "RBFSVM",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "RidgeRegression",
    "StandardScaler",
    "StratifiedKFold",
    "TfidfVectorizer",
    "accuracy_score",
    "binarized_metrics",
    "classification_report",
    "clone",
    "confusion_matrix",
    "cross_val_score",
    "f1_score",
    "precision_score",
    "r2_score",
    "recall_score",
    "rmse",
    "train_test_split",
]
