"""Linear models: multinomial logistic regression and ridge regression.

LogisticRegression minimizes L2-regularized softmax cross-entropy with
L-BFGS (scipy), matching the behaviour of sklearn's default solver that the
paper used.  The ``C`` parameter follows sklearn's convention (inverse
regularization strength; the paper's grid is C in {1e-3 ... 1e3}).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_array,
    check_X_y,
)
from repro.ml.preprocessing import LabelEncoder


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial (softmax) logistic regression with L2 regularization."""

    def __init__(self, C: float = 1.0, max_iter: int = 200, tol: float = 1e-6):
        self.C = C
        self.max_iter = max_iter
        self.tol = tol

    def fit(self, X, y) -> "LogisticRegression":
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_samples, n_features = X.shape
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")
        onehot = np.zeros((n_samples, n_classes))
        onehot[np.arange(n_samples), codes] = 1.0
        alpha = 1.0 / (self.C * n_samples)  # per-sample averaged loss

        def objective(flat: np.ndarray):
            weights = flat[: n_features * n_classes].reshape(n_features, n_classes)
            bias = flat[n_features * n_classes :]
            probs = _softmax(X @ weights + bias)
            eps = 1e-12
            loss = -np.sum(onehot * np.log(probs + eps)) / n_samples
            loss += 0.5 * alpha * np.sum(weights * weights)
            grad_logits = (probs - onehot) / n_samples
            grad_w = X.T @ grad_logits + alpha * weights
            grad_b = grad_logits.sum(axis=0)
            return loss, np.concatenate([grad_w.ravel(), grad_b])

        start = np.zeros(n_features * n_classes + n_classes)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        flat = result.x
        self.coef_ = flat[: n_features * n_classes].reshape(n_features, n_classes)
        self.intercept_ = flat[n_features * n_classes :]
        self.n_iter_ = int(result.nit)
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Class probabilities, columns ordered as :attr:`classes_`."""
        return _softmax(self.decision_function(X))

    def predict(self, X) -> list:
        probs = self.predict_proba(X)
        return self._encoder.inverse_transform(np.argmax(probs, axis=1))


class RidgeRegression(BaseEstimator, RegressorMixin):
    """L2-regularized linear regression, solved in closed form.

    The paper's regression downstream model ("Linear Regression - L2
    Regularization").  ``alpha`` is the regularization strength.
    """

    def __init__(self, alpha: float = 1.0):
        self.alpha = alpha

    def fit(self, X, y) -> "RidgeRegression":
        X, y = check_X_y(X, y)
        y = y.astype(float)
        n_samples, n_features = X.shape
        self._x_mean = X.mean(axis=0)
        self._y_mean = float(y.mean())
        x_centered = X - self._x_mean
        y_centered = y - self._y_mean
        gram = x_centered.T @ x_centered
        gram[np.diag_indices_from(gram)] += self.alpha
        self.coef_ = np.linalg.solve(gram, x_centered.T @ y_centered)
        self.intercept_ = self._y_mean - float(self._x_mean @ self.coef_)
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_
