"""Classification and regression metrics used by the benchmark.

Includes the paper's headline metrics: 9-class accuracy, per-class binarized
precision/recall/F1/accuracy (Table 1, Table 8), full confusion matrices
(Table 17), and RMSE for the regression downstream tasks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def accuracy_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: Sequence, y_pred: Sequence, labels: Sequence | None = None
) -> np.ndarray:
    """Confusion matrix with actual classes on rows, predicted on columns."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = sorted(set(y_true.tolist()) | set(y_pred.tolist()), key=str)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for actual, predicted in zip(y_true.tolist(), y_pred.tolist()):
        matrix[index[actual], index[predicted]] += 1
    return matrix


@dataclass(frozen=True)
class BinarizedMetrics:
    """Per-class one-vs-rest metrics, as reported in the paper's Table 1/8.

    ``accuracy`` is the 2x2 diagonal accuracy of the binarized problem;
    ``support`` is the number of true positives + false negatives.
    """

    precision: float
    recall: float
    f1: float
    accuracy: float
    support: int


def binarized_metrics(y_true: Sequence, y_pred: Sequence, positive) -> BinarizedMetrics:
    """One-vs-rest precision/recall/F1/accuracy for class ``positive``."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    true_pos = np.sum((y_true == positive) & (y_pred == positive))
    false_pos = np.sum((y_true != positive) & (y_pred == positive))
    false_neg = np.sum((y_true == positive) & (y_pred != positive))
    true_neg = np.sum((y_true != positive) & (y_pred != positive))
    precision = true_pos / (true_pos + false_pos) if true_pos + false_pos else 0.0
    recall = true_pos / (true_pos + false_neg) if true_pos + false_neg else 0.0
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    total = true_pos + false_pos + false_neg + true_neg
    accuracy = (true_pos + true_neg) / total if total else 0.0
    return BinarizedMetrics(
        precision=float(precision),
        recall=float(recall),
        f1=float(f1),
        accuracy=float(accuracy),
        support=int(true_pos + false_neg),
    )


def precision_score(y_true: Sequence, y_pred: Sequence, positive) -> float:
    """One-vs-rest precision for the given positive class."""
    return binarized_metrics(y_true, y_pred, positive).precision


def recall_score(y_true: Sequence, y_pred: Sequence, positive) -> float:
    """One-vs-rest recall for the given positive class."""
    return binarized_metrics(y_true, y_pred, positive).recall


def f1_score(y_true: Sequence, y_pred: Sequence, positive) -> float:
    """One-vs-rest F1 for the given positive class."""
    return binarized_metrics(y_true, y_pred, positive).f1


def rmse(y_true: Sequence, y_pred: Sequence) -> float:
    """Root mean squared error (the paper's regression metric)."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def r2_score(y_true: Sequence, y_pred: Sequence) -> float:
    """Coefficient of determination."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    residual = np.sum((y_true - y_pred) ** 2)
    total = np.sum((y_true - np.mean(y_true)) ** 2)
    if total == 0:
        return 0.0 if residual > 0 else 1.0
    return float(1.0 - residual / total)


def classification_report(
    y_true: Sequence, y_pred: Sequence, labels: Sequence
) -> dict:
    """Per-class binarized metrics plus overall accuracy, keyed by label."""
    report = {
        str(label): binarized_metrics(y_true, y_pred, label) for label in labels
    }
    report["__accuracy__"] = accuracy_score(y_true, y_pred)
    return report
