"""Distance functions, including a vectorized one-vs-many Levenshtein.

The paper's k-NN (Section 3.3.3) uses the weighted distance

    d = ED(X_name) + gamma * EC(X_stats)

where ED is the edit distance between attribute names and EC the euclidean
distance between descriptive-stats vectors.  Computing edit distance between
one query and thousands of training names pair-by-pair in Python is slow, so
:func:`levenshtein_one_vs_many` vectorizes the DP across the training set.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance between two strings (insert/delete/substitute)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    positions = np.arange(len(b) + 1, dtype=np.int64)
    previous = positions.copy()
    b_codes = np.frombuffer(b.encode("utf-32-le"), dtype=np.uint32)
    for i, ch in enumerate(a, start=1):
        cost = (b_codes != ord(ch)).astype(np.int64)
        current = np.empty(len(b) + 1, dtype=np.int64)
        current[0] = i
        # substitution / deletion are elementwise over the previous row
        current[1:] = np.minimum(previous[:-1] + cost, previous[1:] + 1)
        # insertion chains within the current row:
        #   current[j] = min(current[j], min_{k<j} current[k] + (j - k))
        # which is j + prefix-min of (current[k] - k).
        current = np.minimum(
            current, np.minimum.accumulate(current - positions) + positions
        )
        previous = current
    return int(previous[len(b)])


def _encode_padded(strings: Sequence[str], max_len: int) -> np.ndarray:
    """Strings as a (n, max_len) uint32 codepoint matrix padded with 0."""
    out = np.zeros((len(strings), max_len), dtype=np.uint32)
    for i, text in enumerate(strings):
        codes = np.frombuffer(text.encode("utf-32-le"), dtype=np.uint32)
        out[i, : len(codes)] = codes[:max_len]
    return out


def _levenshtein_dp(
    query: str,
    matrix: np.ndarray,
    lengths: np.ndarray,
    positions: np.ndarray,
) -> np.ndarray:
    """Corpus-vectorized DP for one query over a pre-encoded corpus matrix."""
    n = matrix.shape[0]
    if not query:
        return lengths.copy()
    previous = np.tile(positions, (n, 1))
    for i, ch in enumerate(query, start=1):
        cost = (matrix != ord(ch)).astype(np.int64)
        current = np.empty_like(previous)
        current[:, 0] = i
        current[:, 1:] = np.minimum(previous[:, :-1] + cost, previous[:, 1:] + 1)
        # insertion-chain prefix-min scan along columns (see `levenshtein`)
        current = np.minimum(
            current, np.minimum.accumulate(current - positions, axis=1) + positions
        )
        previous = current
    return previous[np.arange(n), lengths]


def levenshtein_one_vs_many(query: str, corpus: Sequence[str]) -> np.ndarray:
    """Edit distance from ``query`` to every string in ``corpus``.

    Vectorized across the corpus: one (len(query) x max_len) DP where each
    cell is a corpus-sized vector.  Exact (matches :func:`levenshtein`).
    """
    n = len(corpus)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    lengths = np.array([len(s) for s in corpus], dtype=np.int64)
    max_len = int(lengths.max()) if n else 0
    if max_len == 0:
        return np.full(n, len(query), dtype=np.int64)
    matrix = _encode_padded(corpus, max_len)
    positions = np.arange(max_len + 1, dtype=np.int64)[None, :]
    return _levenshtein_dp(query, matrix, lengths, positions)


def levenshtein_many_vs_many(
    queries: Sequence[str], corpus: Sequence[str]
) -> np.ndarray:
    """Edit distances from each query to every corpus string, shape (q, n).

    Row i equals ``levenshtein_one_vs_many(queries[i], corpus)``, but the
    corpus is encoded once for the whole batch and repeated query strings
    (attribute names recur across files) run the DP only once.
    """
    n = len(corpus)
    out = np.empty((len(queries), n), dtype=np.int64)
    if n == 0 or not queries:
        return out
    lengths = np.array([len(s) for s in corpus], dtype=np.int64)
    max_len = int(lengths.max())
    if max_len == 0:
        for i, query in enumerate(queries):
            out[i] = len(query)
        return out
    matrix = _encode_padded(corpus, max_len)
    positions = np.arange(max_len + 1, dtype=np.int64)[None, :]
    seen: dict[str, int] = {}
    for i, query in enumerate(queries):
        first = seen.setdefault(query, i)
        if first != i:
            out[i] = out[first]
        else:
            out[i] = _levenshtein_dp(query, matrix, lengths, positions)
    return out


def _banded_dp(
    query: str, matrix: np.ndarray, lengths: np.ndarray, cap: int
) -> np.ndarray:
    """Banded, early-exit DP for one query over a pre-encoded corpus.

    Exact for every pair whose true distance is ≤ ``cap``; pairs beyond the
    cap are reported as ``cap + 1``.  Three mechanisms shed work relative to
    the full DP:

    * **length lower bound** — ``|len(query) - len(s)| > cap`` pairs never
      enter the DP at all;
    * **diagonal band** — at DP row ``i`` only columns ``i ± cap`` can hold
      a value ≤ cap, so each row computes at most ``2·cap + 1`` cells
      instead of ``max_len``;
    * **early exit** — the row minimum of the DP is non-decreasing, so any
      string whose in-band minimum exceeds the cap is retired; when enough
      strings retire the working set is compacted, and the loop stops as
      soon as nothing is left.

    Correctness of the clipping: DP values are monotone non-decreasing in
    their inputs, so a cell computed ≤ cap can only have been derived from
    cells that are themselves ≤ cap — which are exact by induction.  Cells
    ≥ cap + 1 (including everything outside the band) may be underestimates
    of the true value but never dip back under the cap.
    """
    n, max_len = matrix.shape
    m = len(query)
    sentinel = cap + 1
    result = np.full(n, sentinel, dtype=np.int64)
    alive = np.flatnonzero(np.abs(lengths - m) <= cap)
    if alive.size == 0:
        return result
    if m == 0:
        result[alive] = lengths[alive]  # ≤ cap by the length bound
        return result
    sub = matrix[alive]
    sublen = lengths[alive]
    orig = alive
    width = max_len + 1
    prev = np.full((orig.size, width), sentinel, dtype=np.int64)
    hi0 = min(cap, max_len)
    prev[:, : hi0 + 1] = np.arange(hi0 + 1)
    for i, ch in enumerate(query, start=1):
        lo = i - cap if i > cap else 0
        hi = min(max_len, i + cap)
        if lo > max_len:  # pragma: no cover - excluded by the length bound
            return result
        curr = np.full((sub.shape[0], width), sentinel, dtype=np.int64)
        jstart = lo if lo > 0 else 1
        cost = (sub[:, jstart - 1 : hi] != ord(ch)).astype(np.int64)
        np.minimum(
            prev[:, jstart - 1 : hi] + cost,
            prev[:, jstart : hi + 1] + 1,
            out=curr[:, jstart : hi + 1],
        )
        if lo == 0:
            curr[:, 0] = i
        # insertion-chain prefix-min within the band (see `levenshtein`)
        pos = np.arange(lo, hi + 1, dtype=np.int64)
        band = curr[:, lo : hi + 1]
        np.minimum(
            band, np.minimum.accumulate(band - pos, axis=1) + pos, out=band
        )
        np.minimum(band, sentinel, out=band)
        alive_mask = band.min(axis=1) <= cap
        n_alive = int(np.count_nonzero(alive_mask))
        if n_alive == 0:
            return result
        if band.shape[0] - n_alive > band.shape[0] // 4:
            sub = sub[alive_mask]
            sublen = sublen[alive_mask]
            orig = orig[alive_mask]
            curr = curr[alive_mask]
        prev = curr
    result[orig] = prev[np.arange(orig.size), sublen]
    return result


def levenshtein_one_vs_many_banded(
    query: str, corpus: Sequence[str], cap: int
) -> np.ndarray:
    """Capped edit distance from ``query`` to every string in ``corpus``.

    Entries whose true distance is ≤ ``cap`` equal
    :func:`levenshtein_one_vs_many` exactly; all other entries are clipped
    to ``cap + 1``.  Most pairs exit the banded DP long before ``max_len``
    columns (see :func:`_banded_dp`).
    """
    if cap < 0:
        raise ValueError("cap must be >= 0")
    n = len(corpus)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    lengths = np.array([len(s) for s in corpus], dtype=np.int64)
    max_len = int(lengths.max())
    if max_len == 0:
        return np.full(n, min(len(query), cap + 1), dtype=np.int64)
    return _banded_dp(query, _encode_padded(corpus, max_len), lengths, cap)


def levenshtein_many_vs_many_banded(
    queries: Sequence[str], corpus: Sequence[str], cap: int
) -> np.ndarray:
    """Capped edit-distance matrix, shape (q, n).

    Row i equals ``levenshtein_one_vs_many_banded(queries[i], corpus, cap)``;
    the corpus is encoded once for the whole batch and repeated query
    strings run the DP only once.
    """
    if cap < 0:
        raise ValueError("cap must be >= 0")
    n = len(corpus)
    out = np.empty((len(queries), n), dtype=np.int64)
    if n == 0 or not queries:
        return out
    lengths = np.array([len(s) for s in corpus], dtype=np.int64)
    max_len = int(lengths.max())
    if max_len == 0:
        for i, query in enumerate(queries):
            out[i] = min(len(query), cap + 1)
        return out
    matrix = _encode_padded(corpus, max_len)
    seen: dict[str, int] = {}
    for i, query in enumerate(queries):
        first = seen.setdefault(query, i)
        if first != i:
            out[i] = out[first]
        else:
            out[i] = _banded_dp(query, matrix, lengths, cap)
    return out


def euclidean_one_vs_many(query: np.ndarray, corpus: np.ndarray) -> np.ndarray:
    """Euclidean distance from one vector to each row of ``corpus``."""
    query = np.asarray(query, dtype=float)
    corpus = np.asarray(corpus, dtype=float)
    diff = corpus - query[None, :]
    return np.sqrt(np.sum(diff * diff, axis=1))


def euclidean_many_vs_many(
    queries: np.ndarray, corpus: np.ndarray, chunk: int = 256
) -> np.ndarray:
    """Row-wise euclidean distances, shape (q, n).

    Row i is bit-identical to ``euclidean_one_vs_many(queries[i], corpus)``:
    the kernel broadcasts the same direct differences (no a²+b²−2ab
    rearrangement, which changes rounding), chunking queries to bound the
    (chunk, n, d) temporary.
    """
    queries = np.asarray(queries, dtype=float)
    corpus = np.asarray(corpus, dtype=float)
    out = np.empty((queries.shape[0], corpus.shape[0]))
    for start in range(0, queries.shape[0], chunk):
        block = queries[start : start + chunk]
        diff = corpus[None, :, :] - block[:, None, :]
        out[start : start + chunk] = np.sqrt(np.sum(diff * diff, axis=2))
    return out


def pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs euclidean distances, shape (len(a), len(b))."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    sq = a_sq + b_sq - 2.0 * a @ b.T
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)
