"""Estimator contracts for the mini-ML substrate.

A small re-creation of the parts of scikit-learn's API the paper relies on:
``fit`` / ``predict`` / ``predict_proba`` / ``get_params`` / ``set_params``
and :func:`clone`.  No sklearn is available in this environment, so the
substrate is implemented from scratch on numpy.
"""

from __future__ import annotations

import copy
import inspect

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when predict is called before fit."""


class BaseEstimator:
    """Base class providing parameter introspection and cloning support.

    Subclasses must accept all hyper-parameters as keyword arguments in
    ``__init__`` and store them under the same attribute names (the sklearn
    convention), so that :meth:`get_params`/:func:`clone` work generically.
    """

    def get_params(self) -> dict:
        """Hyper-parameters as a dict, derived from the ``__init__`` signature."""
        signature = inspect.signature(type(self).__init__)
        names = [
            name
            for name, param in signature.parameters.items()
            if name != "self" and param.kind is not inspect.Parameter.VAR_KEYWORD
        ]
        return {name: getattr(self, name) for name in names}

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyper-parameters in place; unknown names raise ValueError."""
        valid = self.get_params()
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid: {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def _check_fitted(self, attribute: str) -> None:
        if not hasattr(self, attribute):
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """A fresh unfitted estimator with the same hyper-parameters."""
    params = {
        key: copy.deepcopy(value) for key, value in estimator.get_params().items()
    }
    return type(estimator)(**params)


class ClassifierMixin:
    """Marker + shared helpers for classifiers."""

    _estimator_kind = "classifier"

    def score(self, X, y) -> float:
        """Mean accuracy on (X, y)."""
        return float(np.mean(np.asarray(self.predict(X)) == np.asarray(y)))


class RegressorMixin:
    """Marker + shared helpers for regressors."""

    _estimator_kind = "regressor"

    def score(self, X, y) -> float:
        """Negative RMSE (so that larger is better, for grid search)."""
        pred = np.asarray(self.predict(X), dtype=float)
        y = np.asarray(y, dtype=float)
        return -float(np.sqrt(np.mean((pred - y) ** 2)))


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate and convert a feature matrix / label vector pair."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if y.ndim != 1:
        raise ValueError(f"y must be 1-D, got shape {y.shape}")
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    if X.shape[0] == 0:
        raise ValueError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X, y


def check_array(X) -> np.ndarray:
    """Validate and convert a feature matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ValueError("X contains NaN or infinite values")
    return X
