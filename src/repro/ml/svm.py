"""RBF-kernel support vector machine (one-vs-rest, squared hinge).

The paper grid-searches an RBF-SVM (sklearn's SVC).  sklearn is unavailable
here, so we solve the *primal* L2-regularized squared-hinge problem with
L-BFGS over an explicit kernel expansion.  For training sets larger than
``max_landmarks`` a Nyström approximation keeps the kernel matrix tractable
(an n x m map instead of n x n), which preserves RBF-SVM behaviour at
laptop scale — a documented substitution in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BaseEstimator, ClassifierMixin, check_array, check_X_y
from repro.ml.preprocessing import LabelEncoder


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """exp(-gamma * ||a_i - b_j||^2), shape (len(a), len(b))."""
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    sq = np.maximum(a_sq + b_sq - 2.0 * a @ b.T, 0.0)
    return np.exp(-gamma * sq)


class RBFSVM(BaseEstimator, ClassifierMixin):
    """RBF-kernel SVM via one-vs-rest squared-hinge on a kernel feature map."""

    def __init__(
        self,
        C: float = 1.0,
        gamma: float = 0.1,
        max_landmarks: int = 1500,
        max_iter: int = 150,
        random_state: int = 0,
    ):
        self.C = C
        self.gamma = gamma
        self.max_landmarks = max_landmarks
        self.max_iter = max_iter
        self.random_state = random_state

    def _feature_map(self, X: np.ndarray) -> np.ndarray:
        kernel = rbf_kernel(X, self.landmarks_, self.gamma)
        return kernel @ self._normalizer

    def fit(self, X, y) -> "RBFSVM":
        X, y = check_X_y(X, y)
        self._encoder = LabelEncoder().fit(y)
        self.classes_ = self._encoder.classes_
        codes = self._encoder.transform(y)
        n_samples = X.shape[0]
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("need at least two classes to fit a classifier")

        rng = np.random.default_rng(self.random_state)
        if n_samples > self.max_landmarks:
            index = rng.choice(n_samples, size=self.max_landmarks, replace=False)
            self.landmarks_ = X[np.sort(index)].copy()
        else:
            self.landmarks_ = X.copy()
        # Nyström normalizer: K_mm^{-1/2} so that phi(x) phi(z)^T ~ k(x, z)
        k_mm = rbf_kernel(self.landmarks_, self.landmarks_, self.gamma)
        eigvals, eigvecs = np.linalg.eigh(k_mm)
        eigvals = np.maximum(eigvals, 1e-8)
        self._normalizer = eigvecs @ np.diag(eigvals**-0.5) @ eigvecs.T

        phi = self._feature_map(X)
        n_features = phi.shape[1]
        targets = np.full((n_samples, n_classes), -1.0)
        targets[np.arange(n_samples), codes] = 1.0
        lam = 1.0 / (self.C * n_samples)

        def objective(flat: np.ndarray):
            weights = flat[: n_features * n_classes].reshape(n_features, n_classes)
            bias = flat[n_features * n_classes :]
            margins = phi @ weights + bias
            slack = np.maximum(0.0, 1.0 - targets * margins)
            loss = np.sum(slack * slack) / n_samples
            loss += 0.5 * lam * np.sum(weights * weights)
            grad_margins = -2.0 * targets * slack / n_samples
            grad_w = phi.T @ grad_margins + lam * weights
            grad_b = grad_margins.sum(axis=0)
            return loss, np.concatenate([grad_w.ravel(), grad_b])

        start = np.zeros(n_features * n_classes + n_classes)
        result = minimize(
            objective,
            start,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        flat = result.x
        self.coef_ = flat[: n_features * n_classes].reshape(n_features, n_classes)
        self.intercept_ = flat[n_features * n_classes :]
        return self

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("coef_")
        X = check_array(X)
        return self._feature_map(X) @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """Softmax over margins — calibrated enough for confidence routing."""
        margins = self.decision_function(X)
        shifted = margins - margins.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    def predict(self, X) -> list:
        margins = self.decision_function(X)
        return self._encoder.inverse_transform(np.argmax(margins, axis=1))
