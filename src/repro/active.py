"""User-in-the-loop labeling: confidence-driven annotation prioritization.

Section 3.3 argues an ML-based approach "allows users to intervene to
prioritize their effort towards Context-Specific types or columns with low
confidence scores"; Section 6.2 leaves user-in-the-loop interface design
open.  This module simulates the annotation loop so strategies can be
compared: start from a small seed, repeatedly pick a batch of unlabeled
columns by a strategy, reveal their labels, retrain, and track held-out
accuracy versus labels spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.featurize import LabeledDataset
from repro.core.models import RandomForestModel

STRATEGIES = ("random", "least_confidence", "margin", "context_specific_first")


@dataclass
class ActiveLearningCurve:
    """Accuracy after each annotation round."""

    strategy: str
    labels_spent: list[int] = field(default_factory=list)
    test_accuracy: list[float] = field(default_factory=list)

    def final_accuracy(self) -> float:
        return self.test_accuracy[-1] if self.test_accuracy else 0.0


def _pick(
    strategy: str,
    probabilities: np.ndarray,
    classes,
    pool: list[int],
    batch: int,
    rng: np.random.Generator,
) -> list[int]:
    if strategy == "random":
        chosen = rng.choice(len(pool), size=min(batch, len(pool)), replace=False)
        return [pool[int(i)] for i in chosen]
    if strategy == "least_confidence":
        order = np.argsort(probabilities.max(axis=1))
        return [pool[int(i)] for i in order[:batch]]
    if strategy == "margin":
        sorted_probs = np.sort(probabilities, axis=1)
        margin = sorted_probs[:, -1] - sorted_probs[:, -2]
        order = np.argsort(margin)
        return [pool[int(i)] for i in order[:batch]]
    if strategy == "context_specific_first":
        from repro.types import FeatureType

        cs_index = None
        for i, label in enumerate(classes):
            if label is FeatureType.CONTEXT_SPECIFIC:
                cs_index = i
                break
        scores = (
            probabilities[:, cs_index]
            if cs_index is not None
            else 1.0 - probabilities.max(axis=1)
        )
        order = np.argsort(-scores)
        return [pool[int(i)] for i in order[:batch]]
    raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")


def run_active_learning(
    dataset: LabeledDataset,
    test: LabeledDataset,
    strategy: str = "least_confidence",
    seed_size: int = 60,
    batch_size: int = 40,
    n_rounds: int = 4,
    n_estimators: int = 20,
    random_state: int = 0,
) -> ActiveLearningCurve:
    """Simulate one annotation campaign and return its learning curve."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; choose from {STRATEGIES}")
    if seed_size >= len(dataset):
        raise ValueError("seed_size must be smaller than the dataset")
    rng = np.random.default_rng(random_state)
    order = rng.permutation(len(dataset))
    labeled = list(order[:seed_size])
    pool = list(order[seed_size:])

    curve = ActiveLearningCurve(strategy=strategy)
    for _round in range(n_rounds + 1):
        model = RandomForestModel(
            n_estimators=n_estimators, random_state=random_state
        )
        model.fit(dataset.subset(labeled))
        curve.labels_spent.append(len(labeled))
        curve.test_accuracy.append(model.score(test))
        if _round == n_rounds or not pool:
            break
        pool_profiles = [dataset.profiles[i] for i in pool]
        probabilities = model.predict_proba(pool_profiles)
        picked = _pick(
            strategy, probabilities, model.classes_, pool, batch_size, rng
        )
        picked_set = set(picked)
        labeled.extend(picked)
        pool = [i for i in pool if i not in picked_set]
    return curve


def compare_strategies(
    dataset: LabeledDataset,
    test: LabeledDataset,
    strategies: tuple[str, ...] = ("random", "least_confidence"),
    **kwargs,
) -> dict[str, ActiveLearningCurve]:
    """Run several strategies with identical seeds/budgets."""
    return {
        strategy: run_active_learning(dataset, test, strategy=strategy, **kwargs)
        for strategy in strategies
    }
