"""Fault plans: declarative, seeded descriptions of *where* and *when* the
injector fires.

A plan is a JSON document::

    {
      "seed": 0,
      "rules": [
        {"point": "cache.read", "mode": "error", "error": "OSError",
         "probability": 0.5, "max_fires": 2},
        {"point": "worker.run", "mode": "kill",
         "match": {"experiment": "table1", "attempt": 0}},
        {"point": "cache.write", "mode": "corrupt", "on_call": 1}
      ]
    }

Each rule names one failure point (see ``docs/robustness.md`` for the
registry) and one of four modes:

``error``
    Raise an exception at the point.  ``error`` names a builtin exception
    type (``"OSError"``, ``"ConnectionResetError"``, ...); anything else —
    including the default — raises
    :class:`~repro.faults.injector.FaultInjectedError`.
``kill``
    SIGKILL the calling process (a worker crash that leaves no trace).
``hang``
    Sleep ``seconds`` (default 3600) at the point — a wedged worker.
``corrupt``
    Only honored by byte-corruption-capable sites
    (:meth:`~repro.faults.injector.FaultInjector.corrupt`): the bytes
    passing through the point are deterministically mangled.

*When* a rule fires is deterministic given the plan: ``on_call: N`` fires on
exactly the N-th matching call (1-based, counted per process);
``probability: p`` draws from a :class:`random.Random` seeded by
``(plan seed, rule index)``; with neither, every matching call fires.
``max_fires`` bounds either form.  ``match`` restricts a rule to calls whose
context fields (stringified) equal the given values — e.g. only the worker
running ``table1`` on its first ``attempt``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

MODES = ("error", "kill", "hang", "corrupt")


class FaultPlanError(ValueError):
    """A fault plan file/dict that cannot be interpreted."""


@dataclass(frozen=True)
class FaultRule:
    """One (point, mode, trigger) entry of a plan."""

    point: str
    mode: str = "error"
    error: str = "FaultInjectedError"
    message: str = ""
    probability: float | None = None
    on_call: int | None = None
    max_fires: int | None = None
    seconds: float = 3600.0
    match: tuple[tuple[str, str], ...] = ()

    def matches(self, ctx: dict) -> bool:
        """True when every ``match`` field equals the stringified context."""
        for key, value in self.match:
            if key not in ctx or str(ctx[key]) != value:
                return False
        return True

    @classmethod
    def from_dict(cls, raw: dict, index: int) -> "FaultRule":
        if not isinstance(raw, dict):
            raise FaultPlanError(f"rules[{index}] must be an object")
        point = raw.get("point")
        if not point or not isinstance(point, str):
            raise FaultPlanError(f'rules[{index}] needs a "point" name')
        mode = raw.get("mode", "error")
        if mode not in MODES:
            raise FaultPlanError(
                f"rules[{index}].mode {mode!r} not one of {MODES}"
            )
        probability = raw.get("probability")
        if probability is not None:
            probability = float(probability)
            if not 0.0 <= probability <= 1.0:
                raise FaultPlanError(
                    f"rules[{index}].probability must be in [0, 1]"
                )
        on_call = raw.get("on_call")
        if on_call is not None:
            on_call = int(on_call)
            if on_call < 1:
                raise FaultPlanError(f"rules[{index}].on_call is 1-based")
        if probability is not None and on_call is not None:
            raise FaultPlanError(
                f"rules[{index}]: probability and on_call are exclusive"
            )
        max_fires = raw.get("max_fires")
        match = raw.get("match", {})
        if not isinstance(match, dict):
            raise FaultPlanError(f"rules[{index}].match must be an object")
        return cls(
            point=point,
            mode=mode,
            error=str(raw.get("error", "FaultInjectedError")),
            message=str(raw.get("message", "")),
            probability=probability,
            on_call=on_call,
            max_fires=None if max_fires is None else int(max_fires),
            seconds=float(raw.get("seconds", 3600.0)),
            match=tuple(sorted((str(k), str(v)) for k, v in match.items())),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of :class:`FaultRule` entries."""

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0
    source: str = "<dict>"

    @classmethod
    def from_dict(cls, raw: dict, source: str = "<dict>") -> "FaultPlan":
        if not isinstance(raw, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        rules_raw = raw.get("rules", [])
        if not isinstance(rules_raw, list):
            raise FaultPlanError('"rules" must be a list')
        rules = tuple(
            FaultRule.from_dict(rule, index)
            for index, rule in enumerate(rules_raw)
        )
        return cls(rules=rules, seed=int(raw.get("seed", 0)), source=source)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        """Parse a plan JSON file; all failure modes raise FaultPlanError."""
        try:
            with open(path, encoding="utf-8") as handle:
                raw = json.load(handle)
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan {path!r}: {exc}") from exc
        except ValueError as exc:
            raise FaultPlanError(f"fault plan {path!r} is not JSON: {exc}") from exc
        return cls.from_dict(raw, source=path)

    def points(self) -> set[str]:
        return {rule.point for rule in self.rules}
