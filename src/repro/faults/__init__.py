"""repro.faults — deterministic, seeded fault injection.

The robustness machinery of this repo (crash-safe cache, checkpointed
benchmark runs, retrying serve client) is *proved* rather than assumed: the
chaos suite (``tests/test_faults.py``) and the CI ``chaos-smoke`` job drive
the real stack through this injector and assert that every run either
recovers to byte-identical output or fails loudly with a typed error.

Activate a plan one of two ways:

* ``--fault-plan plan.json`` on ``repro-bench`` / ``repro-serve`` /
  ``repro-infer`` (see :func:`add_fault_flags`);
* ``$REPRO_FAULT_PLAN=/path/plan.json`` in the environment — picked up at
  import time, which is how chaos tests reach into spawned subprocesses.

With no plan, every injection site is a single ``is None`` check.
See ``docs/robustness.md`` for the plan format and the point registry.
"""

from __future__ import annotations

import os

from repro.faults.injector import FaultInjectedError, FaultInjector, faults
from repro.faults.plan import FaultPlan, FaultPlanError, FaultRule

ENV_VAR = "REPRO_FAULT_PLAN"


def install_plan_from_env(env_var: str = ENV_VAR) -> FaultPlan | None:
    """Install the plan named by ``$REPRO_FAULT_PLAN``, if any.

    A set-but-broken plan raises :class:`FaultPlanError` — a chaos run with
    a typo'd plan must fail loudly, not silently run fault-free.
    """
    path = os.environ.get(env_var)
    if not path:
        return None
    plan = FaultPlan.load(path)
    faults.install(plan)
    return plan


def add_fault_flags(parser) -> None:
    """Attach ``--fault-plan`` to an ``argparse`` parser (CLI chaos runs)."""
    parser.add_argument(
        "--fault-plan", default=None, metavar="PATH",
        help="JSON fault-injection plan for chaos testing (see "
             "docs/robustness.md); default: $REPRO_FAULT_PLAN if set",
    )


def configure_faults(args) -> FaultPlan | None:
    """Install the plan from ``--fault-plan`` (overriding the env plan)."""
    path = getattr(args, "fault_plan", None)
    if not path:
        return faults.active  # the env-var plan, if one was installed
    plan = FaultPlan.load(path)
    faults.install(plan)
    return plan


# Chaos subprocesses (forked workers excepted — they inherit the parent's
# injector) see the plan without any CLI plumbing.
install_plan_from_env()

__all__ = [
    "ENV_VAR",
    "FaultInjectedError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "add_fault_flags",
    "configure_faults",
    "faults",
    "install_plan_from_env",
]
