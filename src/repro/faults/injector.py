"""The fault injector: named failure points driven by a :class:`FaultPlan`.

Call sites throughout the stack declare *where* a fault could strike::

    from repro.faults import faults

    faults.point("cache.read", kind=kind, key=key)      # may raise/kill/hang
    payload = faults.corrupt("cache.write", payload)    # may mangle bytes

With no plan installed (the production default) both calls are a single
``is None`` check — no allocation, no locking, no behavior change.  With a
plan active (``--fault-plan plan.json`` or ``$REPRO_FAULT_PLAN``) each call
consults the plan's rules for that point; firing is deterministic given the
plan (seeded RNG / fire-on-Nth-call counters), so a chaos run replays
exactly.  Fired faults are counted (``faults.fired`` /
``faults.fired.<point>``) so they show up in metrics snapshots and run
manifests.

Registered points (see ``docs/robustness.md``):

================  =====================================================
``cache.read``    :meth:`ArtifactCache.get`, before the entry is read
``cache.write``   :meth:`ArtifactCache.put`; ``corrupt`` mangles payload
``csv.read``      :func:`load_csv_table` / :func:`iter_csv_chunks`, before
                  the file is opened
``csv.read_chunk``  streaming reader, before each chunk read (ctx:
                  ``source``, ``index``)
``model.load``    :func:`core.persistence.load_model`
``worker.run``    benchmark worker, before its experiment (ctx:
                  ``experiment``, ``attempt``, ``pid``)
``queue.claim``   work queue, before the O_EXCL lease create (ctx:
                  ``task``, ``attempt``, ``owner``)
``queue.steal``   work queue, before stealing a stale lease (ctx:
                  ``task``, ``attempt``, ``owner``)
``queue.release`` work queue, before a lease is released (ctx: ``task``,
                  ``attempt``, ``completed``, ``owner``)
``serve.accept``  HTTP POST handler (an injected error answers 503)
``serve.respond`` HTTP response writer (an injected error drops the
                  connection mid-response)
``client.request``  :class:`ServeClient` transport, per attempt
================  =====================================================
"""

from __future__ import annotations

import builtins
import os
import random
import signal
import threading
import time

from repro.faults.plan import FaultPlan, FaultRule
from repro.obs import telemetry


class FaultInjectedError(RuntimeError):
    """The default exception raised by ``mode: error`` rules."""


class _RuleState:
    """Mutable firing state for one rule (calls seen, fires spent, RNG)."""

    __slots__ = ("rule", "calls", "fires", "rng")

    def __init__(self, rule: FaultRule, plan_seed: int, index: int):
        self.rule = rule
        self.calls = 0
        self.fires = 0
        self.rng = random.Random(f"{plan_seed}:{index}:{rule.point}")

    def should_fire(self) -> bool:
        """Count one matching call and decide (deterministically) on firing."""
        self.calls += 1
        rule = self.rule
        if rule.max_fires is not None and self.fires >= rule.max_fires:
            return False
        if rule.on_call is not None:
            fire = self.calls == rule.on_call
        elif rule.probability is not None:
            fire = self.rng.random() < rule.probability
        else:
            fire = True
        if fire:
            self.fires += 1
        return fire


class FaultInjector:
    """Process-wide registry of failure points and the active plan."""

    def __init__(self):
        self._plan: FaultPlan | None = None
        self._states: dict[str, list[_RuleState]] = {}
        self._lock = threading.Lock()

    # -- plan lifecycle ------------------------------------------------------
    @property
    def active(self) -> FaultPlan | None:
        return self._plan

    def install(self, plan: FaultPlan) -> None:
        """Activate a plan (replacing any previous one, counters reset)."""
        states: dict[str, list[_RuleState]] = {}
        for index, rule in enumerate(plan.rules):
            states.setdefault(rule.point, []).append(
                _RuleState(rule, plan.seed, index)
            )
        with self._lock:
            self._states = states
            self._plan = plan

    def clear(self) -> None:
        """Deactivate fault injection (back to the zero-overhead path)."""
        with self._lock:
            self._plan = None
            self._states = {}

    # -- injection sites -----------------------------------------------------
    def point(self, name: str, **ctx) -> None:
        """Declare a failure point; may raise, kill, or hang per the plan.

        ``corrupt`` rules are ignored here — they only apply to
        :meth:`corrupt` sites.
        """
        if self._plan is None:
            return
        self._hit(name, ctx, corrupting=False)

    def corrupt(self, name: str, data: bytes) -> bytes:
        """A byte-corruption point: returns ``data``, possibly mangled.

        Only ``mode: corrupt`` rules apply; the transform keeps the first
        half of the payload and appends a garbage tail, simulating a torn
        write / bit rot that a checksum must catch.
        """
        if self._plan is None:
            return data
        if self._hit(name, ctx={}, corrupting=True):
            telemetry.count("faults.corrupted")
            return data[: max(1, len(data) // 2)] + b"\xde\xad\xbe\xef"
        return data

    # -- internals -----------------------------------------------------------
    def _hit(self, name: str, ctx: dict, corrupting: bool) -> bool:
        for state in self._states.get(name, ()):
            rule = state.rule
            if (rule.mode == "corrupt") != corrupting:
                continue
            if not rule.matches(ctx):
                continue
            with self._lock:
                fire = state.should_fire()
            if not fire:
                continue
            telemetry.count("faults.fired")
            telemetry.count(f"faults.fired.{name}")
            telemetry.warning(
                "faults.fired", point=name, mode=rule.mode, **ctx
            )
            if corrupting:
                return True
            self._strike(rule, name, ctx)
        return False

    def _strike(self, rule: FaultRule, name: str, ctx: dict) -> None:
        if rule.mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if rule.mode == "hang":
            time.sleep(rule.seconds)
            return
        raise self._make_error(rule, name, ctx)

    @staticmethod
    def _make_error(rule: FaultRule, name: str, ctx: dict) -> BaseException:
        detail = f" ({rule.message})" if rule.message else ""
        message = f"injected fault at {name}{detail}"
        exc_type = getattr(builtins, rule.error, None)
        if isinstance(exc_type, type) and issubclass(exc_type, BaseException):
            try:
                return exc_type(message)
            except TypeError:
                pass  # exceptions needing structured args fall through
        return FaultInjectedError(message)


#: Process-wide singleton every instrumented site imports.
faults = FaultInjector()
