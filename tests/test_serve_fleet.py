"""Fleet-scale serving tests: multi-model registry, hot swap, scale-out.

Differential tests in the PR 5 tradition: every distributed behavior —
per-request model routing, a mid-run zero-downtime swap, a 2/4-backend
balancer, a backend killed under seeded chaos — must answer byte-identical
to the serial/offline truth.  The in-process tests bind real ephemeral-port
``ThreadingHTTPServer`` instances; the ``repro-infer`` parity test spawns a
real ``repro-serve`` process and compares CLI stdout bytes.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.core.models import (
    CNNModel,
    KNNModel,
    LogRegModel,
    RandomForestModel,
    SVMModel,
)
from repro.core.persistence import save_model
from repro.core.pipeline import TypeInferencePipeline
from repro.datagen.corpus import generate_corpus
from repro.datagen.downstream import SPEC_BY_NAME, make_dataset
from repro.downstream.harness import evaluate_assignment
from repro.downstream.suite import model_assignments, served_assignments
from repro.faults import FaultPlan, faults
from repro.obs import telemetry
from repro.serve import (
    FleetClient,
    InferenceService,
    ModelRegistry,
    ServeClient,
    ServeClientError,
    SwapInProgressError,
)
from repro.serve.http import make_server

CSV_TEXT = "id,salary,state\n" + "\n".join(
    f"{i},{1000 + 13 * i},{['CA', 'TX', 'NY', 'WA'][i % 4]}"
    for i in range(40)
)

#: Small per-request tables for the soak/scale-out load mix.
SOAK_CSVS = [
    "a,b\n" + "\n".join(f"{i},{i * 3 + k}" for i in range(8))
    for k in range(4)
]

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _telemetry():
    """Serving metrics are part of the contract; record them per test."""
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


@pytest.fixture(scope="module")
def fleet_models(small_corpus):
    """One fitted model of every kind (small hyperparameters)."""
    dataset = small_corpus.dataset
    models = {
        "logreg": LogRegModel(),
        "svm": SVMModel(max_landmarks=120),
        "rf": RandomForestModel(n_estimators=10, random_state=0),
        "knn": KNNModel(n_neighbors=3),
        "cnn": CNNModel(
            epochs=2, hidden_units=16, num_filters=8, embed_dim=8
        ),
    }
    for model in models.values():
        model.fit(dataset)
    return models


@pytest.fixture(scope="module")
def fleet_model_paths(fleet_models, tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet-models")
    paths = {}
    for name, model in fleet_models.items():
        paths[name] = root / f"{name}.model"
        save_model(model, paths[name])
    return paths


@contextmanager
def running_server(registry, **service_knobs):
    service = InferenceService(registry, **service_knobs)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_port}")
    try:
        yield client, service
    finally:
        client.close()
        server.shutdown()
        service.drain(timeout=5)
        server.shutdown_idle()
        server.server_close()
        thread.join(timeout=5)


class _FleetBackend:
    """One in-process serve node of a fleet (own service + HTTP server)."""

    def __init__(self, registry, **service_knobs):
        self.service = InferenceService(registry, **service_knobs)
        self.server = make_server("127.0.0.1", 0, self.service)
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()
        self.service.start()
        self.url = f"http://127.0.0.1:{self.server.server_port}"
        self.stopped = False

    def stop(self, timeout: float = 5.0) -> None:
        if self.stopped:
            return
        self.stopped = True
        self.server.shutdown()
        self.service.drain(timeout=timeout)
        self.server.shutdown_idle()
        self.server.server_close()
        self.thread.join(timeout=timeout)


@contextmanager
def running_fleet(model, n_backends, **service_knobs):
    """N serve nodes over the same (shared-artifact) model."""
    backends = [
        _FleetBackend(ModelRegistry.preloaded(model), **service_knobs)
        for _ in range(n_backends)
    ]
    try:
        yield backends
    finally:
        for backend in backends:
            backend.stop()


class TestRouting:
    def test_header_and_path_routes_match_entries(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="rf")
        registry.register("knn", model=fleet_models["knn"])
        with running_server(registry, max_wait_s=0.0) as (client, service):
            via_header = client.infer_csv_text(
                CSV_TEXT, table="t", model="knn"
            )
            body = CSV_TEXT.encode("utf-8")
            via_path = client._request(
                "POST", "/v1/models/knn/infer?table=t", body, "text/csv"
            )
            default = client.infer_csv_text(CSV_TEXT, table="t")
        assert via_header["model"] == "knn"
        assert via_path["model"] == "knn"
        assert default["model"] == "rf"
        knn_fp = service.registry.resolve("knn").fingerprint
        assert via_header["fingerprint"] == knn_fp
        assert via_path["fingerprint"] == knn_fp
        assert json.dumps(via_header["predictions"]) == json.dumps(
            via_path["predictions"]
        )

    def test_unknown_model_is_404_with_known_names(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="rf")
        with running_server(registry, max_wait_s=0.0) as (client, _):
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text(CSV_TEXT, model="nope")
        assert exc_info.value.status == 404
        assert exc_info.value.payload["models"] == ["rf"]

    def test_healthz_lists_every_model(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="rf")
        registry.register("knn", model=fleet_models["knn"])
        registry.register("logreg", model=fleet_models["logreg"])
        with running_server(registry, max_wait_s=0.0) as (client, _):
            health = client.healthz()
            listing = client.models()
        assert health["default_model"] == "rf"
        assert set(health["models"]) == {"rf", "knn", "logreg"}
        for entry in health["models"].values():
            assert entry["state"] == "ready"
            assert entry["generation"] == 0
            assert entry["fingerprint"]
        assert listing["default"] == "rf"
        assert set(listing["models"]) == {"rf", "knn", "logreg"}


class TestDifferentialParity:
    def test_every_model_kind_served_byte_identical(self, fleet_models):
        """Registry-served predictions == offline pipeline, all 5 kinds."""
        first = next(iter(fleet_models))
        registry = ModelRegistry.preloaded(fleet_models[first], name=first)
        for name, model in fleet_models.items():
            if name != first:
                registry.register(name, model=model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            for name, model in fleet_models.items():
                offline = [
                    p.as_dict()
                    for p in TypeInferencePipeline(model).predict_csv_text(
                        CSV_TEXT
                    )
                ]
                response = client.infer_csv_text(
                    CSV_TEXT, table="sample", model=name
                )
                assert response["degraded"] is False, name
                assert response["model"] == name
                assert json.dumps(response["predictions"]) == json.dumps(
                    offline
                ), f"served {name} diverges from offline"

    def test_repro_infer_server_model_matches_offline_cli(
        self, fleet_model_paths, tmp_path
    ):
        """`repro-infer --server --server-model` == `repro-infer --model`.

        One real repro-serve process hosting all 5 artifacts; stdout bytes
        must match the offline CLI for every model kind.
        """
        csv_path = tmp_path / "sample.csv"
        csv_path.write_text(CSV_TEXT + "\n", encoding="utf-8")
        env = {**os.environ, "PYTHONPATH": "src", "PYTHONUNBUFFERED": "1"}
        args = [sys.executable, "-m", "repro.serve.cli", "--port", "0",
                "--wait-ready"]
        for name, path in fleet_model_paths.items():
            args += ["--model", f"{name}={path}"]
        proc = subprocess.Popen(
            args, cwd=REPO_ROOT, env=env, text=True,
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        )
        try:
            url = None
            for _ in range(20):  # banner may not be the very first line
                line = proc.stdout.readline()
                if not line:
                    break
                match = re.search(r"listening on (http://\S+)", line)
                if match:
                    url = match.group(1)
                    break
            assert url, "repro-serve never printed its startup banner"
            for name, path in fleet_model_paths.items():
                offline = subprocess.run(
                    [sys.executable, "-m", "repro.cli", str(csv_path),
                     "--model", str(path), "--json"],
                    cwd=REPO_ROOT, env=env, text=True, capture_output=True,
                    check=True,
                )
                served = subprocess.run(
                    [sys.executable, "-m", "repro.cli", str(csv_path),
                     "--server", url, "--server-model", name, "--json"],
                    cwd=REPO_ROOT, env=env, text=True, capture_output=True,
                    check=True,
                )
                assert served.stdout == offline.stdout, (
                    f"{name}: served CLI output diverges from offline"
                )
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    def test_table5_against_live_server(self, fleet_models):
        """Downstream (Table 5) scores from served == offline assignments."""
        rf = fleet_models["rf"]
        registry = ModelRegistry.preloaded(rf, name="rf")
        datasets = [
            make_dataset(SPEC_BY_NAME["Hayes"], seed=0),
            make_dataset(SPEC_BY_NAME["Vineyard"], seed=2),
        ]
        with running_server(registry, max_wait_s=0.0) as (client, _):
            for dataset in datasets:
                offline = model_assignments(dataset, rf)
                served = served_assignments(dataset, client, model="rf")
                assert served == offline
                offline_score = evaluate_assignment(dataset, offline)
                served_score = evaluate_assignment(dataset, served)
                assert served_score == offline_score


class TestHotSwap:
    def test_soak_mixed_load_through_mid_run_swap(
        self, fleet_models, tmp_path
    ):
        """Sustained mixed-model load through a swap: zero lost requests,
        clean fingerprint flip, no post-drain answers from the stale
        artifact, the other model untouched."""
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="main")
        registry.register("knn", model=fleet_models["knn"])
        fp_old = registry.resolve("main").fingerprint

        rf_new = RandomForestModel(n_estimators=12, random_state=7)
        rf_new.fit(generate_corpus(n_examples=120, seed=5).dataset)
        new_path = tmp_path / "rf-new.model"
        save_model(rf_new, new_path)

        results: list[dict] = []
        errors: list[BaseException] = []
        lock = threading.Lock()
        stop = threading.Event()

        def worker(client, index):
            i = 0
            while not stop.is_set():
                model = "main" if (i + index) % 2 == 0 else "knn"
                try:
                    response = client.infer_csv_text(
                        SOAK_CSVS[i % len(SOAK_CSVS)],
                        table=f"t{index}-{i}", model=model,
                    )
                except BaseException as exc:  # lost request == test failure
                    with lock:
                        errors.append(exc)
                    return
                with lock:
                    results.append(response)
                i += 1

        with running_server(registry, max_wait_s=0.002) as (client, service):
            threads = [
                threading.Thread(target=worker, args=(client, k), daemon=True)
                for k in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # load against the old artifact first
            handle = service.registry.swap("main", model_path=str(new_path))
            assert handle.wait_flipped(timeout=60)
            assert handle.wait_drained(timeout=60)
            fp_new = service.registry.resolve("main").fingerprint
            # Post-drain: the stale artifact must be gone from responses.
            post_drain = [
                client.infer_csv_text(
                    SOAK_CSVS[0], table="probe", model="main"
                )
                for _ in range(3)
            ]
            time.sleep(0.2)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)

        assert not errors, f"lost/failed requests during swap: {errors[:3]}"
        assert fp_new != fp_old
        main_responses = [r for r in results if r["model"] == "rf"]
        knn_responses = [r for r in results if r["model"] == "knn"]
        assert main_responses and knn_responses
        # Clean flip: fingerprint is a function of swap generation, and only
        # the two expected artifacts ever answered.
        by_generation: dict[int, set] = {}
        for response in main_responses:
            by_generation.setdefault(
                response["generation"], set()
            ).add(response["fingerprint"])
        assert set(by_generation) <= {0, 1}
        assert by_generation.get(0, {fp_old}) == {fp_old}
        assert by_generation.get(1, {fp_new}) == {fp_new}
        for response in post_drain:
            assert response["fingerprint"] == fp_new
            assert response["generation"] == 1
        # The un-swapped model was never disturbed.
        assert {r["generation"] for r in knn_responses} == {0}
        assert len({r["fingerprint"] for r in knn_responses}) == 1

    def test_second_swap_while_loading_is_409(
        self, fleet_models, fleet_model_paths
    ):
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="main")
        entry = registry.resolve("main")
        gate = threading.Event()
        original = entry._load_payload

        def gated_load(model_path, cache, train):
            # Hold the first swap in its loading state so the second one
            # deterministically collides with it.
            gate.wait(timeout=30)
            return original(model_path, cache, train)

        entry._load_payload = gated_load
        handle = registry.swap(
            "main", model_path=str(fleet_model_paths["rf"])
        )
        try:
            with pytest.raises(SwapInProgressError):
                registry.swap(
                    "main", model_path=str(fleet_model_paths["rf"])
                )
        finally:
            gate.set()
            assert handle.wait_drained(timeout=60)

    def test_failed_swap_keeps_old_model(self, fleet_models, tmp_path):
        registry = ModelRegistry.preloaded(fleet_models["rf"], name="main")
        fp_before = registry.resolve("main").fingerprint
        handle = registry.swap(
            "main", model_path=str(tmp_path / "missing.model")
        )
        handle.wait_drained(timeout=60)
        assert handle.failed
        entry = registry.resolve("main")
        assert entry.describe()["last_swap_error"]
        assert entry.fingerprint == fp_before
        assert entry.generation == 0
        assert entry.current() is not None


class TestScaleOut:
    @pytest.mark.parametrize("n_backends", [2, 4])
    def test_balancer_parity_vs_single_process(
        self, fleet_models, n_backends
    ):
        """Same per-column predictions through N backends as through one,
        with X-Trace-Id stitching intact on every response."""
        rf = fleet_models["rf"]
        expected = {}
        with running_server(
            ModelRegistry.preloaded(rf), max_wait_s=0.0
        ) as (client, _):
            for k, csv in enumerate(SOAK_CSVS):
                expected[k] = client.infer_csv_text(csv, table=f"t{k}")
        with running_fleet(rf, n_backends, max_wait_s=0.0) as backends:
            fleet = FleetClient([b.url for b in backends])
            try:
                trace_ids = set()
                for _round in range(3):
                    for k, csv in enumerate(SOAK_CSVS):
                        response = fleet.infer_csv_text(csv, table=f"t{k}")
                        assert json.dumps(response["predictions"]) == \
                            json.dumps(expected[k]["predictions"]), (
                                f"{n_backends}-backend fleet diverges on t{k}"
                            )
                        assert response["trace_id"]
                        trace_ids.add(response["trace_id"])
                # Every request minted its own stitched trace.
                assert len(trace_ids) == 3 * len(SOAK_CSVS)
                health = fleet.healthz()
                assert len(health) == n_backends
                for node in health.values():
                    assert node["models"]["rf"]["state"] == "ready"
            finally:
                fleet.close()

    def test_backend_killed_mid_load_chaos(self, fleet_models):
        """Seeded fault plan + a backend killed mid-run: the balancer
        retries/rebalances and every answer is still correct."""
        rf = fleet_models["rf"]
        with running_server(
            ModelRegistry.preloaded(rf), max_wait_s=0.0
        ) as (client, _):
            expected = [
                client.infer_csv_text(csv, table=f"t{k}")["predictions"]
                for k, csv in enumerate(SOAK_CSVS)
            ]
        # Deterministic client-side transport chaos on top of the kill.
        faults.install(FaultPlan.from_dict({
            "seed": 20260808,
            "rules": [{
                "point": "client.request", "mode": "error",
                "probability": 0.05, "max_fires": 4,
            }],
        }))
        try:
            with running_fleet(rf, 2, max_wait_s=0.0) as backends:
                fleet = FleetClient(
                    [b.url for b in backends],
                    timeout_s=10.0, cooldown_s=0.2,
                )
                try:
                    results: list[tuple[int, list]] = []
                    errors: list[BaseException] = []
                    lock = threading.Lock()

                    def worker(index):
                        for i in range(12):
                            k = (index + i) % len(SOAK_CSVS)
                            try:
                                response = fleet.infer_csv_text(
                                    SOAK_CSVS[k], table=f"t{k}"
                                )
                            except BaseException as exc:
                                with lock:
                                    errors.append(exc)
                                return
                            with lock:
                                results.append(
                                    (k, response["predictions"])
                                )

                    threads = [
                        threading.Thread(
                            target=worker, args=(k,), daemon=True
                        )
                        for k in range(3)
                    ]
                    for thread in threads:
                        thread.start()
                    time.sleep(0.05)
                    backends[1].stop(timeout=5)  # killed mid-load
                    for thread in threads:
                        thread.join(timeout=60)
                    assert not errors, f"requests lost: {errors[:3]}"
                    assert len(results) == 3 * 12
                    for k, predictions in results:
                        assert json.dumps(predictions) == json.dumps(
                            expected[k]
                        ), "a rebalanced request returned a wrong answer"
                finally:
                    fleet.close()
        finally:
            faults.clear()


class TestKeepAliveAndPipelining:
    def test_keep_alive_reuses_one_connection(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"])
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.healthz()
            first = client._local.conn
            client.infer_csv_text(CSV_TEXT, table="t")
            assert client._local.conn is first  # same socket, no re-dial
            client.close()
            assert client.healthz()["ready"]  # transparent re-dial

    def test_stale_keep_alive_reconnects_transparently(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"])
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.healthz()
            # Losing the idle socket (keep-alive timeout, server restart)
            # must cost one transparent reconnect, never a surfaced error.
            before = telemetry.metrics.snapshot()["counters"].get(
                "client.reconnect", 0
            )
            client._local.conn.sock.close()
            response = client.infer_csv_text(CSV_TEXT, table="t")
            after = telemetry.metrics.snapshot()["counters"].get(
                "client.reconnect", 0
            )
        assert response["predictions"]
        assert after == before + 1

    def test_pipelined_matches_sequential(self, fleet_models):
        registry = ModelRegistry.preloaded(fleet_models["rf"])
        jobs = [(f"t{k}", SOAK_CSVS[k % len(SOAK_CSVS)]) for k in range(8)]
        with running_server(registry, max_wait_s=0.0) as (client, _):
            sequential = [
                client.infer_csv_text(csv, table=name)
                for name, csv in jobs
            ]
            pipelined = client.infer_pipelined(jobs, depth=4)
        assert len(pipelined) == len(jobs)
        for seq, pipe, (name, _) in zip(sequential, pipelined, jobs):
            assert pipe["table"] == name  # in-order responses
            assert json.dumps(pipe["predictions"]) == json.dumps(
                seq["predictions"]
            )
        trace_ids = {p["trace_id"] for p in pipelined}
        assert len(trace_ids) == len(jobs)
