"""Tests + property tests for CART trees and random forests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.forest import RandomForestClassifier, RandomForestRegressor
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture()
def xor_data(rng):
    """XOR: requires depth >= 2, impossible for a linear model."""
    X = rng.uniform(-1, 1, size=(400, 2))
    y = ["a" if (x[0] > 0) != (x[1] > 0) else "b" for x in X]
    return X, y


class TestDecisionTreeClassifier:
    def test_fits_xor(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=6).fit(X, y)
        assert tree.score(X, y) > 0.95

    def test_max_depth_one_is_a_stump(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert tree.depth_ <= 1
        assert tree.n_nodes_ <= 3

    def test_pure_node_stops(self):
        X = np.array([[0.0], [1.0], [2.0]])
        tree = DecisionTreeClassifier().fit(X, ["a", "a", "a"])
        assert tree.n_nodes_ == 1

    def test_min_samples_leaf(self, rng):
        X = rng.normal(size=(50, 2))
        y = ["a" if v > 0 else "b" for v in X[:, 0]]
        tree = DecisionTreeClassifier(min_samples_leaf=25).fit(X, y)
        assert tree.n_nodes_ <= 3

    def test_deterministic_given_seed(self, xor_data):
        X, y = xor_data
        a = DecisionTreeClassifier(max_features=1, random_state=3).fit(X, y)
        b = DecisionTreeClassifier(max_features=1, random_state=3).fit(X, y)
        assert a.predict(X) == b.predict(X)

    def test_proba_shape_and_simplex(self, xor_data):
        X, y = xor_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        probs = tree.predict_proba(X)
        assert probs.shape == (len(X), 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    @given(
        st.integers(10, 60),
        st.integers(1, 4),
    )
    @settings(max_examples=15, deadline=None)
    def test_training_accuracy_improves_with_depth(self, n, dim):
        rng = np.random.default_rng(n * dim)
        X = rng.normal(size=(n, dim))
        y = ["a" if v > 0 else "b" for v in X[:, 0]]
        if len(set(y)) < 2:
            return
        shallow = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=12).fit(X, y)
        assert deep.score(X, y) >= shallow.score(X, y) - 1e-9


class TestDecisionTreeRegressor:
    def test_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = np.where(X[:, 0] > 0.5, 10.0, -10.0)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        pred = tree.predict(X)
        # quantile-capped thresholds may need a couple of splits to isolate
        # the boundary exactly; with depth 4 the fit must be exact
        assert np.abs(pred - y).max() < 1e-9

    def test_smooth_function_approximation(self, rng):
        X = rng.uniform(0, 1, size=(500, 1))
        y = np.sin(2 * np.pi * X[:, 0])
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        mse = float(np.mean((tree.predict(X) - y) ** 2))
        assert mse < 0.01


class TestRandomForest:
    def test_classifier_beats_single_stump(self, xor_data):
        X, y = xor_data
        forest = RandomForestClassifier(n_estimators=20, max_depth=6).fit(X, y)
        assert forest.score(X, y) > 0.95

    def test_deterministic_given_seed(self, xor_data):
        X, y = xor_data
        a = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, random_state=1).fit(X, y)
        assert a.predict(X) == b.predict(X)

    def test_proba_simplex(self, xor_data):
        X, y = xor_data
        forest = RandomForestClassifier(n_estimators=7).fit(X, y)
        probs = forest.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0.0

    def test_regressor(self, rng):
        X = rng.uniform(0, 1, size=(400, 2))
        y = 3.0 * X[:, 0] + np.sin(6 * X[:, 1])
        forest = RandomForestRegressor(n_estimators=20, max_depth=10).fit(X, y)
        mse = float(np.mean((forest.predict(X) - y) ** 2))
        assert mse < 0.05

    def test_no_bootstrap_option(self, xor_data):
        X, y = xor_data
        forest = RandomForestClassifier(
            n_estimators=3, bootstrap=False, max_features=None
        ).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_permutation_importance_finds_signal(self, rng):
        X = rng.normal(size=(300, 3))
        y = ["a" if v > 0 else "b" for v in X[:, 1]]
        forest = RandomForestClassifier(n_estimators=15, max_depth=6).fit(X, y)
        importances = forest.feature_importances(X, y, random_state=0)
        assert int(np.argmax(importances)) == 1
