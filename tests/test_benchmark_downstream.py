"""Tests for the downstream experiment (Tables 4/5, Figure 8) and Table 15."""

import numpy as np
import pytest

SUBSET = ("Hayes", "Supreme", "Zoo", "MBA")


@pytest.fixture(scope="module")
def downstream_result(small_context_module):
    from repro.benchmark.downstream_exp import run_downstream_experiment

    return run_downstream_experiment(
        small_context_module, dataset_names=SUBSET, seed=3
    )


@pytest.fixture(scope="module")
def small_context_module():
    from repro.benchmark.context import BenchmarkContext

    return BenchmarkContext(n_examples=500, seed=7, rf_estimators=15, cnn_epochs=3)


class TestDownstreamExperiment:
    def test_inference_summary(self, downstream_result):
        rows = {row.approach: row for row in downstream_result.inference}
        assert set(rows) == {"pandas", "tfdv", "autogluon", "ourrf"}
        total = rows["ourrf"].total
        assert all(row.total == total for row in rows.values())
        # pandas covers far fewer columns than the others (Table 4A shape)
        assert rows["pandas"].covered < rows["autogluon"].covered
        assert rows["ourrf"].covered == total
        for row in rows.values():
            assert 0.0 <= row.accuracy <= 1.0

    def test_comparisons_partition_datasets(self, downstream_result):
        for kind in ("linear", "forest"):
            for row in downstream_result.comparisons[kind]:
                assert (
                    row.underperform + row.match + row.outperform == len(SUBSET)
                )

    def test_ourrf_wins_on_integer_categorical_datasets(self, downstream_result):
        # Hayes is all integer-coded categoricals: tools misroute to numeric,
        # the linear model suffers; OurRF should not underperform them.
        suite = downstream_result.suite
        ourrf = suite.delta_vs_truth("ourrf", "linear", "Hayes")
        tfdv = suite.delta_vs_truth("tfdv", "linear", "Hayes")
        assert ourrf >= tfdv

    def test_forest_more_forgiving_than_linear(self, downstream_result):
        # the paper's finding 2: wrong typing of ordinal/binary integer
        # categoricals hurts linear models more than downstream forests
        suite = downstream_result.suite
        lin = suite.delta_vs_truth("tfdv", "linear", "Supreme")
        rf = suite.delta_vs_truth("tfdv", "forest", "Supreme")
        assert rf >= lin - 1.0

    def test_delta_cdf(self, downstream_result):
        xs, ys = downstream_result.delta_cdf("tfdv", "linear")
        assert len(xs) == len(SUBSET)
        assert np.all(xs >= 0.0)
        assert ys[-1] == pytest.approx(1.0)

    def test_renderings(self, downstream_result):
        from repro.benchmark.downstream_exp import (
            render_figure8,
            render_table4,
            render_table5,
        )

        assert "coverage" in render_table4(downstream_result)
        assert "Hayes" in render_table5(downstream_result)
        assert "CDF" in render_figure8(downstream_result)


class TestTable15:
    def test_double_representation(self, small_context_module):
        from repro.benchmark.table15 import render_table15, run_table15

        rows = run_table15(
            small_context_module, dataset_names=("Hayes", "Supreme"), seed=3
        )
        # 4 approaches (3 tools doubled + newrf) x 2 downstream model kinds
        assert len(rows) == 8
        for row in rows:
            assert 0 <= row.underperform_truth <= 2
        assert "double representation" in render_table15(rows)


class TestTable11:
    def test_vocabulary_extension(self, small_context_module):
        from repro.benchmark.table11 import render_table11, run_table11

        rows = run_table11(
            small_context_module, extra_train_counts=(60,), extra_test=40
        )
        assert len(rows) == 2  # Country and State
        for row in rows:
            assert row.n_test_examples >= 40
            assert row.recall > 0.5  # sherlock-sourced labels are learnable
            assert 0.0 < row.ten_class_accuracy <= 1.0
        assert "Country" in render_table11(rows)
