"""Tests for the 9-class vocabulary."""

import pytest

from repro.types import (
    ALL_FEATURE_TYPES,
    N_CLASSES,
    PAPER_CLASS_DISTRIBUTION,
    FeatureType,
)


def test_nine_classes():
    assert N_CLASSES == 9
    assert len(ALL_FEATURE_TYPES) == 9
    assert len(set(ALL_FEATURE_TYPES)) == 9


def test_short_codes_roundtrip():
    for feature_type in ALL_FEATURE_TYPES:
        assert FeatureType.from_short(feature_type.short) is feature_type


def test_short_codes_match_paper():
    assert FeatureType.NUMERIC.short == "NU"
    assert FeatureType.CATEGORICAL.short == "CA"
    assert FeatureType.DATETIME.short == "DT"
    assert FeatureType.SENTENCE.short == "ST"
    assert FeatureType.URL.short == "URL"
    assert FeatureType.EMBEDDED_NUMBER.short == "EN"
    assert FeatureType.LIST.short == "LST"
    assert FeatureType.NOT_GENERALIZABLE.short == "NG"
    assert FeatureType.CONTEXT_SPECIFIC.short == "CS"


def test_from_short_case_insensitive():
    assert FeatureType.from_short("nu") is FeatureType.NUMERIC
    assert FeatureType.from_short("lst") is FeatureType.LIST


def test_from_short_unknown_raises():
    with pytest.raises(ValueError, match="unknown feature type"):
        FeatureType.from_short("XX")


def test_from_label():
    assert FeatureType.from_label("Embedded Number") is FeatureType.EMBEDDED_NUMBER
    assert FeatureType.from_label("not-generalizable") is FeatureType.NOT_GENERALIZABLE
    with pytest.raises(ValueError):
        FeatureType.from_label("Integer")


def test_paper_distribution_sums_to_one():
    # the paper's Section 2.5 percentages add to 99.9% (rounding)
    assert abs(sum(PAPER_CLASS_DISTRIBUTION.values()) - 1.0) < 2e-3
    assert set(PAPER_CLASS_DISTRIBUTION) == set(ALL_FEATURE_TYPES)


def test_paper_distribution_matches_section_2_5():
    assert PAPER_CLASS_DISTRIBUTION[FeatureType.NUMERIC] == pytest.approx(0.366)
    assert PAPER_CLASS_DISTRIBUTION[FeatureType.CATEGORICAL] == pytest.approx(0.233)
    assert PAPER_CLASS_DISTRIBUTION[FeatureType.URL] == pytest.approx(0.015)
