"""Tests for the end-to-end char-CNN classifier."""

import numpy as np
import pytest

from repro.nn.charcnn import CharCNNClassifier


@pytest.fixture(scope="module")
def name_task():
    rng = np.random.default_rng(3)
    names = [f"zip_{i}" for i in range(120)] + [f"amount_{i}" for i in range(120)]
    stats = np.vstack(
        [rng.normal(0, 1, (120, 4)), rng.normal(2.5, 1, (120, 4))]
    )
    labels = ["CA"] * 120 + ["NU"] * 120
    return names, stats, labels


def _small_cnn(**overrides):
    params = dict(
        embed_dim=16, num_filters=16, hidden_units=32, max_len=12,
        epochs=8, random_state=0,
    )
    params.update(overrides)
    return CharCNNClassifier(**params)


class TestCharCNN:
    def test_learns_name_plus_stats(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn().fit([names], stats, labels)
        assert model.score([names], stats, labels) > 0.9

    def test_stats_only(self, name_task):
        _names, stats, labels = name_task
        model = _small_cnn(epochs=15).fit([], stats, labels)
        assert model.score([], stats, labels) > 0.85

    def test_proba_simplex(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=2).fit([names], stats, labels)
        probs = model.predict_proba([names], stats)
        assert probs.shape == (len(names), 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_loss_decreases(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=6).fit([names], stats, labels)
        assert model.history_[-1] < model.history_[0]

    def test_requires_some_input(self):
        with pytest.raises(ValueError, match="at least one"):
            CharCNNClassifier().fit([], None, ["a", "b"])

    def test_field_count_checked_at_predict(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=1).fit([names], stats, labels)
        with pytest.raises(ValueError, match="text fields"):
            model.predict([names, names], stats)

    def test_field_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            CharCNNClassifier().fit([["a"]], None, ["x", "y"])

    def test_deterministic_given_seed(self, name_task):
        names, stats, labels = name_task
        a = _small_cnn(epochs=2).fit([names], stats, labels)
        b = _small_cnn(epochs=2).fit([names], stats, labels)
        assert a.predict([names], stats) == b.predict([names], stats)
