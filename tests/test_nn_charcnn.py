"""Tests for the end-to-end char-CNN classifier."""

import numpy as np
import pytest

from repro.nn.charcnn import CharCNNClassifier, CheckpointError


@pytest.fixture(scope="module")
def name_task():
    rng = np.random.default_rng(3)
    names = [f"zip_{i}" for i in range(120)] + [f"amount_{i}" for i in range(120)]
    stats = np.vstack(
        [rng.normal(0, 1, (120, 4)), rng.normal(2.5, 1, (120, 4))]
    )
    labels = ["CA"] * 120 + ["NU"] * 120
    return names, stats, labels


def _small_cnn(**overrides):
    params = dict(
        embed_dim=16, num_filters=16, hidden_units=32, max_len=12,
        epochs=8, random_state=0,
    )
    params.update(overrides)
    return CharCNNClassifier(**params)


class TestCharCNN:
    def test_learns_name_plus_stats(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn().fit([names], stats, labels)
        assert model.score([names], stats, labels) > 0.9

    def test_stats_only(self, name_task):
        _names, stats, labels = name_task
        model = _small_cnn(epochs=15).fit([], stats, labels)
        assert model.score([], stats, labels) > 0.85

    def test_proba_simplex(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=2).fit([names], stats, labels)
        probs = model.predict_proba([names], stats)
        assert probs.shape == (len(names), 2)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_loss_decreases(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=6).fit([names], stats, labels)
        assert model.history_[-1] < model.history_[0]

    def test_requires_some_input(self):
        with pytest.raises(ValueError, match="at least one"):
            CharCNNClassifier().fit([], None, ["a", "b"])

    def test_field_count_checked_at_predict(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=1).fit([names], stats, labels)
        with pytest.raises(ValueError, match="text fields"):
            model.predict([names, names], stats)

    def test_field_length_mismatch(self):
        with pytest.raises(ValueError, match="length"):
            CharCNNClassifier().fit([["a"]], None, ["x", "y"])

    def test_deterministic_given_seed(self, name_task):
        names, stats, labels = name_task
        a = _small_cnn(epochs=2).fit([names], stats, labels)
        b = _small_cnn(epochs=2).fit([names], stats, labels)
        assert a.predict([names], stats) == b.predict([names], stats)


def _params(model):
    return [p.copy() for p in model._params]


class TestCheckpointResume:
    def test_resumed_run_bit_identical(self, name_task, tmp_path):
        """Interrupt training twice mid-epoch; the resumed model must match
        an uninterrupted run bit for bit."""
        names, stats, labels = name_task
        straight = _small_cnn(epochs=4).fit([names], stats, labels)

        ckpt = tmp_path / "cnn.ckpt"
        sliced = _small_cnn(epochs=4)
        sliced.fit([names], stats, labels,
                   checkpoint_path=ckpt, checkpoint_every=3, max_steps=5)
        assert not sliced.training_complete_
        for _ in range(10):  # keep resuming in slices until done
            sliced = _small_cnn(epochs=4)
            sliced.fit([names], stats, labels,
                       checkpoint_path=ckpt, checkpoint_every=3,
                       resume=True, max_steps=7)
            if sliced.training_complete_:
                break
        assert sliced.training_complete_
        for a, b in zip(_params(straight), _params(sliced)):
            assert np.array_equal(a, b)
        assert straight.history_ == sliced.history_
        assert straight.predict([names], stats) == sliced.predict(
            [names], stats
        )

    def test_max_steps_checkpoints_and_stops(self, name_task, tmp_path):
        names, stats, labels = name_task
        ckpt = tmp_path / "cnn.ckpt"
        model = _small_cnn(epochs=4)
        model.fit([names], stats, labels,
                  checkpoint_path=ckpt, max_steps=2)
        assert not model.training_complete_
        assert ckpt.exists()

    def test_epoch_boundary_checkpoints(self, name_task, tmp_path):
        names, stats, labels = name_task
        ckpt = tmp_path / "cnn.ckpt"
        _small_cnn(epochs=2).fit([names], stats, labels, checkpoint_path=ckpt)
        resumed = _small_cnn(epochs=2)
        resumed.fit([names], stats, labels,
                    checkpoint_path=ckpt, resume=True)
        assert resumed.training_complete_

    def test_config_mismatch_rejected(self, name_task, tmp_path):
        names, stats, labels = name_task
        ckpt = tmp_path / "cnn.ckpt"
        _small_cnn(epochs=2).fit([names], stats, labels,
                                 checkpoint_path=ckpt, max_steps=1)
        other = _small_cnn(epochs=2, embed_dim=8)
        with pytest.raises(CheckpointError, match="embed_dim"):
            other.fit([names], stats, labels,
                      checkpoint_path=ckpt, resume=True)

    def test_corrupt_checkpoint_rejected(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a checkpoint")
        model = _small_cnn(epochs=1)
        with pytest.raises(CheckpointError):
            model.fit([["a", "b"]], None, ["x", "y"],
                      checkpoint_path=bad, resume=True)

    def test_state_dict_roundtrip(self, name_task):
        names, stats, labels = name_task
        a = _small_cnn(epochs=2).fit([names], stats, labels)
        b = _small_cnn(epochs=2)
        b.load_state_dict(a.state_dict())
        assert a.predict([names], stats) == b.predict([names], stats)
        for pa, pb in zip(_params(a), _params(b)):
            assert np.array_equal(pa, pb)


class TestDtypePolicy:
    def test_float32_end_to_end(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=2, dtype="float32").fit(
            [names], stats, labels
        )
        assert all(p.dtype == np.float32 for p in model._params)
        probs = model.predict_proba([names], stats)
        assert probs.dtype == np.float32
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-5)

    def test_float64_default_unchanged(self, name_task):
        names, stats, labels = name_task
        model = _small_cnn(epochs=1).fit([names], stats, labels)
        assert model.dtype == "float64"
        assert all(p.dtype == np.float64 for p in model._params)

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            CharCNNClassifier(dtype="float16")

    def test_float32_drift_within_budget(self, name_task):
        """The float32 model may flip a few near-tie columns relative to
        float64, but accuracy and agreement must stay within budget."""
        names, stats, labels = name_task
        f64 = _small_cnn(epochs=4).fit([names], stats, labels)
        f32 = _small_cnn(epochs=4, dtype="float32").fit(
            [names], stats, labels
        )
        p64 = f64.predict([names], stats)
        p32 = f32.predict([names], stats)
        agreement = np.mean([a == b for a, b in zip(p64, p32)])
        assert agreement >= 0.95
        acc64 = np.mean([p == t for p, t in zip(p64, labels)])
        acc32 = np.mean([p == t for p, t in zip(p32, labels)])
        assert abs(acc64 - acc32) <= 0.05
