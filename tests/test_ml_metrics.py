"""Tests + property tests for classification/regression metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy_score,
    binarized_metrics,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    r2_score,
    recall_score,
    rmse,
)

labels_strategy = st.lists(
    st.sampled_from(["a", "b", "c"]), min_size=1, max_size=60
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(["a", "b"], ["a", "b"]) == 1.0

    def test_half(self):
        assert accuracy_score(["a", "b"], ["a", "c"]) == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score(["a"], ["a", "b"])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])


class TestConfusion:
    def test_basic(self):
        m = confusion_matrix(["a", "a", "b"], ["a", "b", "b"], labels=["a", "b"])
        assert m.tolist() == [[1, 1], [0, 1]]

    @given(labels_strategy)
    def test_diagonal_when_identical(self, labels):
        m = confusion_matrix(labels, labels)
        assert int(m.sum()) == len(labels)
        assert int(np.trace(m)) == len(labels)

    @given(labels_strategy, st.randoms(use_true_random=False))
    def test_row_sums_are_class_counts(self, labels, rnd):
        preds = [rnd.choice(["a", "b", "c"]) for _ in labels]
        m = confusion_matrix(labels, preds, labels=["a", "b", "c"])
        for i, label in enumerate(["a", "b", "c"]):
            assert int(m[i].sum()) == labels.count(label)


class TestBinarized:
    def test_known_values(self):
        y_true = ["p", "p", "n", "n", "p"]
        y_pred = ["p", "n", "p", "n", "p"]
        m = binarized_metrics(y_true, y_pred, "p")
        assert m.precision == pytest.approx(2 / 3)
        assert m.recall == pytest.approx(2 / 3)
        assert m.accuracy == pytest.approx(3 / 5)
        assert m.support == 3

    def test_no_positive_predictions(self):
        m = binarized_metrics(["p", "n"], ["n", "n"], "p")
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0

    @given(labels_strategy, labels_strategy.map(lambda x: x))
    def test_bounds(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:n], y_pred[:n]
        if n == 0:
            return
        m = binarized_metrics(y_true, y_pred, "a")
        for value in (m.precision, m.recall, m.f1, m.accuracy):
            assert 0.0 <= value <= 1.0

    @given(labels_strategy)
    def test_f1_harmonic_mean(self, labels):
        preds = list(reversed(labels))
        m = binarized_metrics(labels, preds, "a")
        if m.precision + m.recall > 0:
            expected = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert m.f1 == pytest.approx(expected)

    def test_wrappers(self):
        y_true, y_pred = ["p", "n"], ["p", "p"]
        assert precision_score(y_true, y_pred, "p") == 0.5
        assert recall_score(y_true, y_pred, "p") == 1.0
        assert f1_score(y_true, y_pred, "p") == pytest.approx(2 / 3)


class TestRegression:
    def test_rmse_zero(self):
        assert rmse([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_rmse_value(self):
        assert rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=40))
    def test_rmse_nonnegative_and_symmetric(self, values):
        other = [v + 1.0 for v in values]
        assert rmse(values, other) >= 0.0
        assert rmse(values, other) == pytest.approx(rmse(other, values))

    def test_r2_perfect_and_mean(self):
        y = [1.0, 2.0, 3.0]
        assert r2_score(y, y) == pytest.approx(1.0)
        assert r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)


def test_classification_report():
    report = classification_report(["a", "b"], ["a", "a"], labels=["a", "b"])
    assert report["__accuracy__"] == 0.5
    assert report["a"].recall == 1.0
    assert report["b"].recall == 0.0
