"""Tests for the active-learning (user-in-the-loop) simulation."""

import pytest

from repro.active import (
    STRATEGIES,
    compare_strategies,
    run_active_learning,
)
from repro.datagen.corpus import generate_corpus


@pytest.fixture(scope="module")
def pools():
    train = generate_corpus(n_examples=300, seed=31).dataset
    test = generate_corpus(n_examples=150, seed=32).dataset
    return train, test


def test_curve_shape(pools):
    train, test = pools
    curve = run_active_learning(
        train, test, strategy="least_confidence",
        seed_size=50, batch_size=30, n_rounds=3, n_estimators=10,
    )
    assert curve.labels_spent == [50, 80, 110, 140]
    assert len(curve.test_accuracy) == 4
    assert all(0.0 <= a <= 1.0 for a in curve.test_accuracy)


def test_more_labels_generally_help(pools):
    train, test = pools
    curve = run_active_learning(
        train, test, strategy="random",
        seed_size=40, batch_size=60, n_rounds=3, n_estimators=12,
    )
    # allow noise, but the end must beat the start
    assert curve.final_accuracy() >= curve.test_accuracy[0] - 0.02
    assert curve.final_accuracy() > 0.6


def test_all_strategies_run(pools):
    train, test = pools
    curves = compare_strategies(
        train, test, strategies=STRATEGIES,
        seed_size=40, batch_size=25, n_rounds=1, n_estimators=8,
    )
    assert set(curves) == set(STRATEGIES)


def test_unknown_strategy(pools):
    train, test = pools
    with pytest.raises(ValueError, match="unknown strategy"):
        run_active_learning(train, test, strategy="oracle")


def test_seed_too_large(pools):
    train, test = pools
    with pytest.raises(ValueError, match="seed_size"):
        run_active_learning(train, test, seed_size=len(train))


def test_pool_exhaustion_stops_early(pools):
    train, test = pools
    curve = run_active_learning(
        train, test, strategy="random",
        seed_size=len(train) - 10, batch_size=50, n_rounds=5, n_estimators=5,
    )
    # only one batch available; curve stops growing
    assert curve.labels_spent[-1] == len(train)
