"""Tests for the experiment harness (small-scale smoke + shape checks)."""

import numpy as np
import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.formatting import format_percent, format_table
from repro.types import ALL_FEATURE_TYPES, FeatureType


class TestFormatting:
    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [["x", 1.23456], ["yy", 2]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1.235" in out
        assert "-" in lines[2]

    def test_none_renders_dash(self):
        out = format_table(["a"], [[None]])
        assert "-" in out.splitlines()[-1]

    def test_format_percent(self):
        assert format_percent(0.923) == "92.3%"


class TestContext:
    def test_lazy_corpus_and_split(self, small_context):
        assert len(small_context.dataset) == 500
        assert len(small_context.train) + len(small_context.test) == 500
        # stratified split: every class in both sides
        assert set(small_context.train.labels) == set(ALL_FEATURE_TYPES)
        assert set(small_context.test.labels) == set(ALL_FEATURE_TYPES)

    def test_models_are_cached(self, small_context):
        a = small_context.model("rf")
        b = small_context.model("rf")
        assert a is b

    def test_raw_column_lookup(self, small_context):
        profile = small_context.dataset.profiles[0]
        column = small_context.raw_column(profile)
        assert column.name == profile.name

    def test_unknown_model_raises(self, small_context):
        with pytest.raises(ValueError, match="unknown model"):
            small_context._build_model("boost", ("stats",))


class TestTable1:
    def test_shapes_and_paper_trends(self, small_context):
        from repro.benchmark.table1 import render_table1, run_table1

        result = run_table1(small_context)
        # headline trend: the RF beats every rule/syntax tool on 9-class acc
        rf = result.nine_class["rf"]
        for tool in ("tfdv", "pandas", "transmogrifai", "autogluon",
                     "sherlock", "rules"):
            assert rf > result.nine_class[tool], tool
        # tools have (near-)perfect recall but weak precision on Numeric
        for tool in ("tfdv", "pandas", "transmogrifai", "autogluon"):
            cell = result.cell(tool, FeatureType.NUMERIC)
            assert cell.recall > 0.9
            assert cell.precision < cell.recall
        # blank cells where the tool's vocabulary lacks the class
        assert result.cell("tfdv", FeatureType.CONTEXT_SPECIFIC) is None
        assert result.cell("pandas", FeatureType.CATEGORICAL) is None
        text = render_table1(result)
        assert "Numeric" in text and "9-class" in text


class TestTable2:
    def test_feature_set_sweep(self, small_context):
        from repro.benchmark.table2 import render_table2, run_table2

        result = run_table2(
            small_context,
            models=("logreg", "rf"),
            feature_sets=(("stats",), ("name",), ("stats", "name")),
        )
        for model in ("logreg", "rf", "knn"):
            assert model in result.accuracy
        # combining stats+name should not be (much) worse than stats alone;
        # at this tiny test scale allow some variance
        rf = result.accuracy["rf"]
        assert rf["X_stats, X2_name"]["test"] >= rf["X_stats"]["test"] - 0.10
        label, best = result.best_feature_set("rf")
        assert 0.5 < best <= 1.0
        assert "X" in render_table2(result, "test")


class TestTable3:
    def test_error_analysis(self, small_context):
        from repro.benchmark.table3 import render_table3, run_table3

        result = run_table3(small_context)
        assert result.test_size == len(small_context.test)
        assert 0.0 <= result.error_rate < 0.5
        for example in result.examples:
            assert example.label != example.prediction
        assert "RF Prediction" in render_table3(result)

    def test_datatype_confusion(self, small_context):
        from repro.benchmark.table3 import (
            render_datatype_confusion,
            run_datatype_confusion,
        )
        from repro.tabular.dtypes import SyntacticType

        counts = run_datatype_confusion(small_context)
        assert sum(counts.values()) == len(small_context.test)
        # Numeric predictions should come overwhelmingly from int/float columns
        numeric_total = sum(
            c for (ft, st), c in counts.items() if ft is FeatureType.NUMERIC
        )
        numeric_numeric = sum(
            c
            for (ft, st), c in counts.items()
            if ft is FeatureType.NUMERIC
            and st in (SyntacticType.INTEGER, SyntacticType.FLOAT)
        )
        assert numeric_numeric >= 0.9 * numeric_total
        assert "raw" in render_datatype_confusion(counts)


class TestTable7:
    def test_leave_file_out(self, small_context):
        from repro.benchmark.table7 import render_table7, run_table7

        result = run_table7(small_context, n_splits=3, models=("logreg",))
        cells = result.accuracy["logreg"]
        assert 0.4 < cells["test"] <= 1.0
        assert cells["train"] >= cells["test"] - 0.05
        assert "leave-datafile-out" in render_table7(result)


class TestTable12:
    def test_ablation_marginal(self, small_context):
        from repro.benchmark.table12 import render_table12, run_table12

        rows = run_table12(small_context)
        assert len(rows) == 8  # 2 models x 4 variants
        by_key = {(r.model, r.ablation): r for r in rows}
        full = by_key[("rf", "full")].nine_class_accuracy
        ablated = by_key[("rf", "minus datetime feature")].nine_class_accuracy
        assert abs(full - ablated) < 0.15  # robustness claim
        assert "ablation" in render_table12(rows)


class TestRobustness:
    def test_perturbation_stability(self, small_context):
        from repro.benchmark.robustness import render_table16, run_robustness

        result = run_robustness(
            small_context, models=("rf",), n_runs=5, max_columns=40
        )
        values = result.stability["rf"]
        assert values.shape == (40,)
        assert np.all((values >= 0) & (values <= 100))
        assert float(np.median(values)) >= 60.0
        xs, ys = result.cdf("rf")
        assert ys[-1] == pytest.approx(1.0)
        assert "percentile" in render_table16(result)


class TestTable17:
    def test_confusion_matrices(self, small_context):
        from repro.benchmark.table17 import render_table17, run_table17

        result = run_table17(small_context)
        n_test = len(small_context.test)
        for name in ("rules", "rf", "sherlock"):
            matrix = result.matrix(name)
            assert matrix.shape == (9, 9)
            assert int(matrix.sum()) == n_test
        # RF should be far more diagonal than the rules
        rf_diag = np.trace(result.matrix("rf")) / n_test
        rules_diag = np.trace(result.matrix("rules")) / n_test
        assert rf_diag > rules_diag
        assert "confusion" in render_table17(result)


class TestDataStats:
    def test_table18_shapes_and_trends(self, small_context):
        from repro.benchmark.datastats import render_table18, run_datastats

        result = run_datastats(small_context)
        sentence_chars = result.summary(FeatureType.SENTENCE, "mean_char_count")
        numeric_chars = result.summary(FeatureType.NUMERIC, "mean_char_count")
        # paper Table 18: Sentence values are much longer than Numeric values
        assert sentence_chars["avg"] > numeric_chars["avg"]
        xs, ys = result.cdf(FeatureType.NUMERIC, "pct_nans")
        assert len(xs) == len(ys) > 0
        assert "by class" in render_table18(result)


class TestRuntime:
    def test_runtime_breakdown(self, small_context):
        from repro.benchmark.runtime import render_figure7, run_runtimes

        breakdowns = run_runtimes(
            small_context, models=("logreg", "rf"), max_columns=20
        )
        assert len(breakdowns) == 2
        for b in breakdowns:
            assert b.total > 0
            assert b.total < 0.2  # the paper's "<0.2 s per column"
        assert "runtime" in render_figure7(breakdowns)


class TestLabeling:
    def test_bootstrap(self, small_context):
        from repro.benchmark.labeling import run_labeling_bootstrap

        result = run_labeling_bootstrap(small_context, seed_size=200)
        assert 0.5 < result.cv_accuracy <= 1.0
        assert sum(result.group_sizes.values()) == len(
            small_context.dataset
        ) - result.seed_size

    def test_crowdsourcing_noise(self, small_context):
        from repro.benchmark.labeling import run_crowdsourcing_simulation

        result = run_crowdsourcing_simulation(
            small_context, worker_accuracy=0.55, n_examples=150
        )
        assert 0.0 <= result.majority_vote_accuracy <= 1.0
        # noisy workers produce many multi-label examples (the paper's finding)
        assert result.pct_examples_with_3plus_labels > 0.2


class TestLeaderboard:
    def test_ranking(self, small_context):
        from repro.benchmark.leaderboard import build_leaderboard

        board = build_leaderboard(small_context)
        ranked = board.ranked()
        accuracies = [e.nine_class_accuracy for e in ranked]
        assert accuracies == sorted(accuracies, reverse=True)
        assert board.winner().approach in ("rf", "cnn", "logreg")
        assert "nine_class_accuracy" in board.to_json()
