"""End-to-end tests for the ``repro.serve`` subsystem — over a real socket.

The in-process tests bind an ephemeral port with the actual
``ThreadingHTTPServer`` + ``ServeClient`` stack; the SIGTERM-drain test
spawns a real ``repro-serve`` process.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.cache import ArtifactCache
from repro.core.models import RandomForestModel
from repro.core.persistence import save_model
from repro.core.pipeline import TypeInferencePipeline
from repro.obs import telemetry
from repro.serve import InferenceService, ModelRegistry, ServeClientError
from repro.serve.client import ServeClient
from repro.serve.http import make_server

CSV_TEXT = "id,salary,state\n" + "\n".join(
    f"{i},{1000 + 13 * i},{['CA', 'TX', 'NY', 'WA'][i % 4]}"
    for i in range(40)
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def served_model(small_corpus):
    model = RandomForestModel(n_estimators=10, random_state=0)
    model.fit(small_corpus.dataset)
    return model


@pytest.fixture(scope="module")
def served_model_path(served_model, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "rf.model"
    save_model(served_model, path)
    return path


@pytest.fixture(autouse=True)
def _telemetry():
    """Serving metrics are part of the contract; record them per test."""
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


@contextmanager
def running_server(registry, start_batcher=True, **service_knobs):
    service = InferenceService(registry, **service_knobs)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if start_batcher:
        service.start()
    client = ServeClient(f"http://127.0.0.1:{server.server_port}")
    try:
        yield client, service
    finally:
        client.close()  # keep-alive sockets would stall the handler join
        server.shutdown()
        service.drain(timeout=5)
        server.shutdown_idle()
        server.server_close()
        thread.join(timeout=5)


class TestSingleRequest:
    def test_parity_with_offline_pipeline(self, served_model):
        offline = [
            p.as_dict()
            for p in TypeInferencePipeline(served_model).predict_csv_text(CSV_TEXT)
        ]
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            response = client.infer_csv_text(CSV_TEXT, table="sample")
        assert response["degraded"] is False
        assert response["model"] == "rf"
        # Byte-identical to the offline pipeline, modulo timing fields.
        assert json.dumps(response["predictions"]) == json.dumps(offline)

    def test_json_columns_payload(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            response = client.infer_columns(
                [
                    {"name": "price", "cells": ["9.99", "12.50", None, "3.10"] * 10},
                    {"name": "city", "cells": ["berlin", "oslo", "lima", "pune"] * 10},
                ],
                table="payload",
            )
            health = client.healthz()
        assert [p["column"] for p in response["predictions"]] == ["price", "city"]
        assert health["ready"] is True
        assert health["model"]["fingerprint"] == registry.fingerprint

    def test_bad_payloads_get_400(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text("")
            assert exc_info.value.status == 400
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_columns([])
            assert exc_info.value.status == 400


class TestBatching:
    def test_concurrent_clients_get_batched(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.25) as (client, _):
            responses: list[dict] = []
            errors: list[Exception] = []

            def fire():
                try:
                    responses.append(client.infer_csv_text(CSV_TEXT, table="c"))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert len(responses) == 6
        # The contract of the micro-batcher: concurrent uploads share batches.
        batch_size = telemetry.metrics.histogram("serve.batch_size")
        assert batch_size.max > 1
        assert max(r["timing"]["batch_requests"] for r in responses) > 1
        # Batched answers match each other (and therefore the offline path,
        # covered by TestSingleRequest).
        first = json.dumps(responses[0]["predictions"])
        assert all(json.dumps(r["predictions"]) == first for r in responses)


class TestRobustness:
    def test_deadline_exceeded_maps_to_504(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        # Gathering window far beyond the deadline: the request cannot be
        # answered in time.
        with running_server(registry, max_wait_s=2.0) as (client, _):
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text(CSV_TEXT, deadline_ms=40)
        assert exc_info.value.status == 504
        assert telemetry.metrics.counter("serve.deadline_exceeded").value >= 1

    def test_full_queue_sheds_with_429(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        # Batcher worker not started: submissions pile up in the queue.
        with running_server(
            registry, start_batcher=False, queue_limit=2, max_wait_s=0.0
        ) as (client, service):
            from repro.tabular.csv_io import read_csv_text

            table = read_csv_text(CSV_TEXT, name="filler")
            service.batcher.submit(table)
            service.batcher.submit(table)
            # The default client would retry the 429 away; this test wants
            # to see the shed itself.
            one_shot = ServeClient(client.base_url, retry=None)
            with pytest.raises(ServeClientError) as exc_info:
                one_shot.infer_csv_text(CSV_TEXT, deadline_ms=5000)
            # Drain the never-started worker's queue by hand so teardown's
            # close() has nothing to wait on.
            service.batcher._queue.clear()
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after_s is not None
        assert telemetry.metrics.counter("serve.shed").value >= 1

    def test_degraded_fallback_while_model_loads(self, served_model):
        registry = ModelRegistry()  # load() never called: stays "loading"
        with running_server(registry, start_batcher=False, max_wait_s=0.0) as (
            client,
            service,
        ):
            service.batcher.start()
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["ready"] is False
            response = client.infer_csv_text(CSV_TEXT, table="cold")
            assert response["degraded"] is True
            assert response["model"] == "rules"
            assert {p["column"] for p in response["predictions"]} == {
                "id", "salary", "state",
            }
            assert all(
                p["confidence"] == 0.5 for p in response["predictions"]
            )
        assert telemetry.metrics.counter("serve.degraded_batches").value >= 1

    def test_metrics_endpoint_reports_serve_counters(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT)
            snapshot = client.metrics()
        assert snapshot["counters"]["serve.request"] >= 1
        assert "serve.batch_size" in snapshot["histograms"]


class TestTracing:
    """Distributed-trace stitching over a real socket (client and server in
    one process, but on different threads and talking real HTTP)."""

    def _spans_by_name(self):
        by_name: dict[str, list] = {}
        for record in telemetry.spans:
            by_name.setdefault(record.name, []).append(record)
        return by_name

    def test_client_span_parents_server_request(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            response = client.infer_csv_text(CSV_TEXT, table="traced")
        spans = self._spans_by_name()
        (client_span,) = spans["client.request"]
        (server_span,) = spans["serve.request"]
        # One trace across the HTTP hop, parented by the client's span.
        assert client_span.trace_id
        assert server_span.trace_id == client_span.trace_id
        assert server_span.parent_span_id == client_span.span_id
        # The response echoes the trace id for log correlation.
        assert response["trace_id"] == client_span.trace_id

    def test_server_side_span_tree_is_stitched(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT, table="traced")
        spans = self._spans_by_name()
        (request,) = spans["serve.request"]
        (queue_wait,) = spans["serve.queue_wait"]
        (batch,) = spans["serve.batch"]
        (predict,) = spans["serve.predict"]
        # Queue wait and the batch both hang off the request span even
        # though they ran on the batcher thread.
        assert queue_wait.trace_id == request.trace_id
        assert queue_wait.parent_span_id == request.span_id
        assert batch.trace_id == request.trace_id
        assert batch.parent_span_id == request.span_id
        # Kernel spans nest under the batch via the ordinary span stack.
        assert predict.trace_id == request.trace_id
        assert predict.parent_span_id == batch.span_id

    def test_batch_span_lists_member_traces(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.25) as (client, _):
            threads = [
                threading.Thread(
                    target=lambda: client.infer_csv_text(CSV_TEXT, table="m")
                )
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        batches = self._spans_by_name()["serve.batch"]
        multi = [b for b in batches if b.attrs.get("n_requests", 0) > 1]
        assert multi, "expected at least one multi-request batch"
        listed = multi[0].attrs.get("member_trace_ids")
        assert listed and len(listed) == multi[0].attrs["n_requests"]
        # Every listed member trace belongs to a recorded request span.
        request_traces = {
            r.trace_id for r in self._spans_by_name()["serve.request"]
        }
        assert set(listed) <= request_traces

    def test_malformed_traceparent_starts_fresh_trace(self, served_model):
        import urllib.request

        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            request = urllib.request.Request(
                client.base_url + "/v1/infer?table=t",
                data=CSV_TEXT.encode("utf-8"),
                method="POST",
                headers={"Content-Type": "text/csv",
                         "traceparent": "not-a-traceparent"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
                header_trace = resp.headers.get("X-Trace-Id")
        spans = self._spans_by_name()
        (server_span,) = spans["serve.request"]
        # A fresh server-side trace, not a guess at the malformed header.
        assert server_span.parent_span_id is None
        assert server_span.trace_id == payload["trace_id"] == header_trace

    def test_shed_response_carries_trace_id(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(
            registry, start_batcher=False, queue_limit=1, max_wait_s=0.0
        ) as (client, service):
            from repro.tabular.csv_io import read_csv_text

            service.batcher.submit(read_csv_text(CSV_TEXT, name="filler"))
            one_shot = ServeClient(client.base_url, retry=None)
            with pytest.raises(ServeClientError) as exc_info:
                one_shot.infer_csv_text(CSV_TEXT, deadline_ms=5000)
            service.batcher._queue.clear()
        assert exc_info.value.status == 429
        # The shed error body names the trace, so the client-side log line
        # and the server's shed log line correlate.
        (client_span,) = self._spans_by_name()["client.request"]
        assert exc_info.value.payload["trace_id"] == client_span.trace_id


class TestPrometheusEndpoint:
    def test_metrics_text_is_valid_exposition(self, served_model):
        from repro.obs import parse_prometheus_text

        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT)
            text = client.metrics_text()
        families = parse_prometheus_text(text)
        assert families["repro_serve_request_total"]["type"] == "counter"
        assert families["repro_serve_request_total"]["samples"][
            "repro_serve_request_total"
        ] >= 1.0
        assert families["repro_serve_batch_size"]["type"] == "summary"
        # Rolling windows are exported as *_window summaries.
        assert any(name.endswith("_window") for name in families)

    def test_metrics_content_negotiation(self, served_model):
        import urllib.request

        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT)
            # Plain scrape: Prometheus text with the versioned content type.
            request = urllib.request.Request(client.base_url + "/metrics")
            with urllib.request.urlopen(request, timeout=30) as resp:
                assert resp.headers.get_content_type() == "text/plain"
                assert "version=0.0.4" in resp.headers["Content-Type"]
                assert b"# TYPE" in resp.read()
            # JSON consumers: Accept negotiation and the explicit path.
            request = urllib.request.Request(
                client.base_url + "/metrics",
                headers={"Accept": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as resp:
                negotiated = json.loads(resp.read().decode("utf-8"))
            legacy = client.metrics()
        assert negotiated["counters"]["serve.request"] >= 1
        assert legacy["counters"]["serve.request"] >= 1

    def test_rolling_windows_populated_by_traffic(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT)
            snapshot = client.metrics()
        windows = snapshot["windows"]
        assert windows["serve.request_ms_window"]["count"] >= 1
        assert windows["serve.batch_size_window"]["count"] >= 1
        assert windows["serve.request_ms_window"]["p99"] > 0


@pytest.mark.slow
class TestCrossProcessTrace:
    """The acceptance scenario: repro-infer --server against a live
    repro-serve, both exporting spans, stitched by repro-obs into one tree."""

    def test_trace_merge_stitches_client_and_server_files(
        self, served_model_path, tmp_path
    ):
        from repro.obs.cli import build_tree, main as obs_main
        from repro.obs.export import read_jsonl

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        server_trace = tmp_path / "server.jsonl"
        client_trace = tmp_path / "client.jsonl"
        csv_path = tmp_path / "sample.csv"
        csv_path.write_text(CSV_TEXT)

        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--model", str(served_model_path),
                "--port", "0", "--max-wait-ms", "50", "--wait-ready",
                "--trace-out", str(server_trace),
            ],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            url = next(
                tok for tok in banner.split() if tok.startswith("http://")
            )
            ServeClient(url).wait_ready(timeout_s=30)

            infer = subprocess.run(
                [
                    sys.executable, "-m", "repro.cli", str(csv_path),
                    "--server", url, "--json",
                    "--trace-out", str(client_trace),
                ],
                capture_output=True, text=True, env=env, timeout=60,
            )
            assert infer.returncode == 0, infer.stderr
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

        # Both processes exported spans.
        client_spans = list(read_jsonl(client_trace))
        server_spans = list(read_jsonl(server_trace))
        assert any(r["name"] == "client.request" for r in client_spans)
        assert any(r["name"] == "serve.request" for r in server_spans)

        merged = tmp_path / "merged.jsonl"
        assert obs_main(
            ["trace", "merge", str(client_trace), str(server_trace),
             "-o", str(merged)]
        ) == 0
        records = list(read_jsonl(merged))
        client_root = next(
            r for r in records if r["name"] == "client.request"
        )
        trace_records = [
            r for r in records if r.get("trace_id") == client_root["trace_id"]
        ]
        # The request's spans from BOTH processes share one trace id...
        assert {r["name"] for r in trace_records} >= {
            "client.request", "serve.request", "serve.batch", "serve.predict",
        }
        # ...and the client-side spans are the root ancestors of the server
        # tree: infer.server (the CLI) > client.request > serve.request.
        roots, children = build_tree(trace_records)
        assert [r["name"] for r in roots] == ["infer.server"]
        assert client_root["parent_span_id"] == roots[0]["span_id"]
        served = {
            r["name"] for r in children.get(client_root["span_id"], [])
        }
        assert "serve.request" in served
        # `repro-obs trace show` renders the merged tree without error.
        assert obs_main(["trace", "show", str(merged),
                         "--trace-id", client_root["trace_id"]]) == 0


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_in_flight_requests(self, served_model_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--model", str(served_model_path),
                "--port", "0", "--max-wait-ms", "600", "--wait-ready",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            url = next(tok for tok in banner.split() if tok.startswith("http://"))
            client = ServeClient(url)
            client.wait_ready(timeout_s=30)

            result: dict = {}

            def fire():
                # Sits in the 600ms gathering window while SIGTERM arrives.
                result["response"] = client.infer_csv_text(CSV_TEXT)

            thread = threading.Thread(target=fire)
            thread.start()
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert proc.wait(timeout=30) == 0
            # The in-flight request was answered, not dropped.
            assert "response" in result
            assert len(result["response"]["predictions"]) == 3
            assert "drained" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestCachePrune:
    """Housekeeping for long-lived servers: LRU eviction of the artifact dir."""

    def _fill(self, root, n=4):
        cache = ArtifactCache(root)
        for index in range(n):
            cache.put("model", f"key{index}", {"payload": "x" * 1000})
            entry = cache.path("model", f"key{index}")
            stamp = time.time() - (n - index) * 100
            os.utime(entry, (stamp, stamp))
        return cache

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = self._fill(tmp_path, n=4)
        sizes = cache.size_bytes()
        report = cache.prune(max_bytes=sizes // 2)
        assert report["removed"] == 2
        # Oldest mtimes (key0, key1) went first.
        assert not cache.path("model", "key0").exists()
        assert not cache.path("model", "key1").exists()
        assert cache.path("model", "key3").exists()
        assert cache.size_bytes() <= sizes // 2

    def test_get_refreshes_recency(self, tmp_path):
        cache = self._fill(tmp_path, n=3)
        assert cache.get("model", "key0") is not None  # bumps mtime
        report = cache.prune(max_bytes=cache.size_bytes() - 1)
        assert report["removed"] == 1
        assert cache.path("model", "key0").exists()
        assert not cache.path("model", "key1").exists()

    def test_prune_cli_subcommand(self, tmp_path, capsys):
        from repro.benchmark.runner import main as bench_main

        cache = self._fill(tmp_path, n=3)
        budget = (2 * cache.size_bytes()) // 3  # room for exactly two entries
        code = bench_main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", str(budget)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 of 3 entries" in out
        assert ArtifactCache(tmp_path).size_bytes() <= budget

    def test_parse_size_suffixes(self):
        from repro.benchmark.runner import parse_size

        assert parse_size("1024") == 1024
        assert parse_size("1k") == 1024
        assert parse_size("2M") == 2 * 1024**2
        assert parse_size("0.5G") == 512 * 1024**2


class TestStreamedIngestion:
    """``POST /v1/infer?stream=1``: profile the CSV body incrementally."""

    def test_streamed_predictions_match_buffered(self, served_model, tmp_path):
        path = tmp_path / "sample.csv"
        path.write_text(CSV_TEXT)
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            buffered = client.infer_csv_text(CSV_TEXT, table="sample")
            streamed = client.infer_csv_file(path, table="sample")
        assert streamed["degraded"] is False
        assert streamed["predictions"] == buffered["predictions"]
        assert telemetry.metrics.counter("serve.stream_request").value == 1

    def test_streamed_degraded_fallback(self, served_model, tmp_path):
        path = tmp_path / "sample.csv"
        path.write_text(CSV_TEXT)
        registry = ModelRegistry()  # never loads: stays degraded
        with running_server(registry, start_batcher=False, max_wait_s=0.0) as (
            client,
            service,
        ):
            service.batcher.start()
            response = client.infer_csv_file(path, table="cold")
        assert response["degraded"] is True
        assert {p["column"] for p in response["predictions"]} == {
            "id", "salary", "state",
        }

    def test_stream_flag_with_json_body_is_400(self, served_model):
        import urllib.error
        import urllib.request

        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            request = urllib.request.Request(
                f"{client.base_url}/v1/infer?stream=1",
                data=json.dumps({"table": "t", "columns": []}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=5)
            assert exc_info.value.code == 400
            body = json.loads(exc_info.value.read())
            assert "CSV body" in body["error"]

    def test_streamed_unreadable_body_is_400(self, served_model):
        import urllib.error
        import urllib.request

        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            # A lying UTF-16 BOM with garbage payload: the incremental
            # decoder rejects it mid-stream; the server must answer a
            # clean 400, not drop the request.
            request = urllib.request.Request(
                f"{client.base_url}/v1/infer?stream=1",
                data=b"\xff\xfe" + os.urandom(31),
                headers={"Content-Type": "text/csv"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(request, timeout=5)
            assert exc_info.value.code == 400
        assert telemetry.metrics.counter("serve.bad_request").value == 1


class TestScanCacheKnob:
    """The stats-scan recycle threshold is a serve-time knob."""

    def test_cli_flag_parses(self):
        from repro.serve.cli import build_parser

        args = build_parser().parse_args(["--scan-cache-max-values", "123"])
        assert args.scan_cache_max_values == 123
        assert build_parser().parse_args([]).scan_cache_max_values == 200_000

    def test_health_reports_threshold(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(
            registry, max_wait_s=0.0, scan_cache_max_values=500
        ) as (client, service):
            assert service.scan_cache_max_values == 500
            assert client.healthz()["scan_cache_max_values"] == 500

    def test_tiny_threshold_recycles_but_answers_identically(
        self, served_model, tmp_path
    ):
        path = tmp_path / "sample.csv"
        path.write_text(CSV_TEXT)
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            reference = client.infer_csv_text(CSV_TEXT, table="sample")
        telemetry.reset()
        with running_server(
            registry, max_wait_s=0.0, scan_cache_max_values=5
        ) as (client, _):
            tight = client.infer_csv_file(path, table="sample")
            resets = telemetry.metrics.counter("sketch.scan_cache_reset").value
        assert resets >= 1
        assert tight["predictions"] == reference["predictions"]
