"""End-to-end tests for the ``repro.serve`` subsystem — over a real socket.

The in-process tests bind an ephemeral port with the actual
``ThreadingHTTPServer`` + ``ServeClient`` stack; the SIGTERM-drain test
spawns a real ``repro-serve`` process.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.cache import ArtifactCache
from repro.core.models import RandomForestModel
from repro.core.persistence import save_model
from repro.core.pipeline import TypeInferencePipeline
from repro.obs import telemetry
from repro.serve import InferenceService, ModelRegistry, ServeClientError
from repro.serve.client import ServeClient
from repro.serve.http import make_server

CSV_TEXT = "id,salary,state\n" + "\n".join(
    f"{i},{1000 + 13 * i},{['CA', 'TX', 'NY', 'WA'][i % 4]}"
    for i in range(40)
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def served_model(small_corpus):
    model = RandomForestModel(n_estimators=10, random_state=0)
    model.fit(small_corpus.dataset)
    return model


@pytest.fixture(scope="module")
def served_model_path(served_model, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve") / "rf.model"
    save_model(served_model, path)
    return path


@pytest.fixture(autouse=True)
def _telemetry():
    """Serving metrics are part of the contract; record them per test."""
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    yield
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


@contextmanager
def running_server(registry, start_batcher=True, **service_knobs):
    service = InferenceService(registry, **service_knobs)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if start_batcher:
        service.start()
    try:
        yield ServeClient(f"http://127.0.0.1:{server.server_port}"), service
    finally:
        server.shutdown()
        service.drain(timeout=5)
        server.server_close()
        thread.join(timeout=5)


class TestSingleRequest:
    def test_parity_with_offline_pipeline(self, served_model):
        offline = [
            p.as_dict()
            for p in TypeInferencePipeline(served_model).predict_csv_text(CSV_TEXT)
        ]
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            response = client.infer_csv_text(CSV_TEXT, table="sample")
        assert response["degraded"] is False
        assert response["model"] == "rf"
        # Byte-identical to the offline pipeline, modulo timing fields.
        assert json.dumps(response["predictions"]) == json.dumps(offline)

    def test_json_columns_payload(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            response = client.infer_columns(
                [
                    {"name": "price", "cells": ["9.99", "12.50", None, "3.10"] * 10},
                    {"name": "city", "cells": ["berlin", "oslo", "lima", "pune"] * 10},
                ],
                table="payload",
            )
            health = client.healthz()
        assert [p["column"] for p in response["predictions"]] == ["price", "city"]
        assert health["ready"] is True
        assert health["model"]["fingerprint"] == registry.fingerprint

    def test_bad_payloads_get_400(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text("")
            assert exc_info.value.status == 400
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_columns([])
            assert exc_info.value.status == 400


class TestBatching:
    def test_concurrent_clients_get_batched(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.25) as (client, _):
            responses: list[dict] = []
            errors: list[Exception] = []

            def fire():
                try:
                    responses.append(client.infer_csv_text(CSV_TEXT, table="c"))
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors
        assert len(responses) == 6
        # The contract of the micro-batcher: concurrent uploads share batches.
        batch_size = telemetry.metrics.histogram("serve.batch_size")
        assert batch_size.max > 1
        assert max(r["timing"]["batch_requests"] for r in responses) > 1
        # Batched answers match each other (and therefore the offline path,
        # covered by TestSingleRequest).
        first = json.dumps(responses[0]["predictions"])
        assert all(json.dumps(r["predictions"]) == first for r in responses)


class TestRobustness:
    def test_deadline_exceeded_maps_to_504(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        # Gathering window far beyond the deadline: the request cannot be
        # answered in time.
        with running_server(registry, max_wait_s=2.0) as (client, _):
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text(CSV_TEXT, deadline_ms=40)
        assert exc_info.value.status == 504
        assert telemetry.metrics.counter("serve.deadline_exceeded").value >= 1

    def test_full_queue_sheds_with_429(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        # Batcher worker not started: submissions pile up in the queue.
        with running_server(
            registry, start_batcher=False, queue_limit=2, max_wait_s=0.0
        ) as (client, service):
            from repro.tabular.csv_io import read_csv_text

            table = read_csv_text(CSV_TEXT, name="filler")
            service.batcher.submit(table)
            service.batcher.submit(table)
            # The default client would retry the 429 away; this test wants
            # to see the shed itself.
            one_shot = ServeClient(client.base_url, retry=None)
            with pytest.raises(ServeClientError) as exc_info:
                one_shot.infer_csv_text(CSV_TEXT, deadline_ms=5000)
            # Drain the never-started worker's queue by hand so teardown's
            # close() has nothing to wait on.
            service.batcher._queue.clear()
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after_s is not None
        assert telemetry.metrics.counter("serve.shed").value >= 1

    def test_degraded_fallback_while_model_loads(self, served_model):
        registry = ModelRegistry()  # load() never called: stays "loading"
        with running_server(registry, start_batcher=False, max_wait_s=0.0) as (
            client,
            service,
        ):
            service.batcher.start()
            health = client.healthz()
            assert health["status"] == "degraded"
            assert health["ready"] is False
            response = client.infer_csv_text(CSV_TEXT, table="cold")
            assert response["degraded"] is True
            assert response["model"] == "rules"
            assert {p["column"] for p in response["predictions"]} == {
                "id", "salary", "state",
            }
            assert all(
                p["confidence"] == 0.5 for p in response["predictions"]
            )
        assert telemetry.metrics.counter("serve.degraded_batches").value >= 1

    def test_metrics_endpoint_reports_serve_counters(self, served_model):
        registry = ModelRegistry.preloaded(served_model)
        with running_server(registry, max_wait_s=0.0) as (client, _):
            client.infer_csv_text(CSV_TEXT)
            snapshot = client.metrics()
        assert snapshot["counters"]["serve.request"] >= 1
        assert "serve.batch_size" in snapshot["histograms"]


@pytest.mark.slow
class TestSigtermDrain:
    def test_sigterm_drains_in_flight_requests(self, served_model_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.serve",
                "--model", str(served_model_path),
                "--port", "0", "--max-wait-ms", "600", "--wait-ready",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = proc.stdout.readline()
            assert "listening on" in banner, banner
            url = next(tok for tok in banner.split() if tok.startswith("http://"))
            client = ServeClient(url)
            client.wait_ready(timeout_s=30)

            result: dict = {}

            def fire():
                # Sits in the 600ms gathering window while SIGTERM arrives.
                result["response"] = client.infer_csv_text(CSV_TEXT)

            thread = threading.Thread(target=fire)
            thread.start()
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert proc.wait(timeout=30) == 0
            # The in-flight request was answered, not dropped.
            assert "response" in result
            assert len(result["response"]["predictions"]) == 3
            assert "drained" in proc.stdout.read()
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


class TestCachePrune:
    """Housekeeping for long-lived servers: LRU eviction of the artifact dir."""

    def _fill(self, root, n=4):
        cache = ArtifactCache(root)
        for index in range(n):
            cache.put("model", f"key{index}", {"payload": "x" * 1000})
            entry = cache.path("model", f"key{index}")
            stamp = time.time() - (n - index) * 100
            os.utime(entry, (stamp, stamp))
        return cache

    def test_prune_evicts_least_recently_used_first(self, tmp_path):
        cache = self._fill(tmp_path, n=4)
        sizes = cache.size_bytes()
        report = cache.prune(max_bytes=sizes // 2)
        assert report["removed"] == 2
        # Oldest mtimes (key0, key1) went first.
        assert not cache.path("model", "key0").exists()
        assert not cache.path("model", "key1").exists()
        assert cache.path("model", "key3").exists()
        assert cache.size_bytes() <= sizes // 2

    def test_get_refreshes_recency(self, tmp_path):
        cache = self._fill(tmp_path, n=3)
        assert cache.get("model", "key0") is not None  # bumps mtime
        report = cache.prune(max_bytes=cache.size_bytes() - 1)
        assert report["removed"] == 1
        assert cache.path("model", "key0").exists()
        assert not cache.path("model", "key1").exists()

    def test_prune_cli_subcommand(self, tmp_path, capsys):
        from repro.benchmark.runner import main as bench_main

        cache = self._fill(tmp_path, n=3)
        budget = (2 * cache.size_bytes()) // 3  # room for exactly two entries
        code = bench_main(
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-bytes", str(budget)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "pruned 1 of 3 entries" in out
        assert ArtifactCache(tmp_path).size_bytes() <= budget

    def test_parse_size_suffixes(self):
        from repro.benchmark.runner import parse_size

        assert parse_size("1024") == 1024
        assert parse_size("1k") == 1024
        assert parse_size("2M") == 2 * 1024**2
        assert parse_size("0.5G") == 512 * 1024**2
