"""Tests for feature-set assembly and vocabulary helpers."""

import numpy as np
import pytest

from repro.core.feature_sets import (
    TABLE2_FEATURE_SETS,
    FeatureSetBuilder,
    feature_set_label,
)
from repro.core.featurize import profile_column
from repro.core.stats import N_STATS
from repro.core.vocabulary import (
    TABLE1_CLASSES,
    TOOL_VOCABULARY,
    binarize,
    coverage_classes,
    tool_covers,
)
from repro.tabular.column import Column
from repro.types import FeatureType


def _profiles():
    return [
        profile_column(Column("salary", ["100", "200"])),
        profile_column(Column("zip", ["92092", "78712"])),
    ]


class TestFeatureSetBuilder:
    def test_table2_has_nine_sets(self):
        assert len(TABLE2_FEATURE_SETS) == 9

    def test_labels(self):
        assert feature_set_label(("stats", "name")) == "X_stats, X2_name"
        assert feature_set_label(("sample1",)) == "X2_sample1"

    def test_stats_only_width(self):
        builder = FeatureSetBuilder(parts=("stats",))
        X = builder.transform(_profiles())
        assert X.shape == (2, N_STATS)
        assert builder.n_features == N_STATS

    def test_name_only_width(self):
        builder = FeatureSetBuilder(parts=("name",), hash_dim=64)
        assert builder.transform(_profiles()).shape == (2, 64)

    def test_combined_width(self):
        builder = FeatureSetBuilder(parts=("stats", "name", "sample1"), hash_dim=32)
        assert builder.n_features == N_STATS + 64
        assert builder.transform(_profiles()).shape == (2, builder.n_features)

    def test_drop_stat_indices(self):
        builder = FeatureSetBuilder(parts=("stats",), drop_stat_indices=(0, 1))
        assert builder.transform(_profiles()).shape == (2, N_STATS - 2)

    def test_unknown_part_raises(self):
        with pytest.raises(ValueError, match="unknown"):
            FeatureSetBuilder(parts=("bogus",))

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            FeatureSetBuilder(parts=())

    def test_transform_is_stateless_and_deterministic(self):
        builder = FeatureSetBuilder(parts=("stats", "name"))
        a = builder.transform(_profiles())
        b = builder.transform(_profiles())
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        builder = FeatureSetBuilder(parts=("name",))
        X = builder.transform(_profiles())
        assert not np.array_equal(X[0], X[1])


class TestVocabulary:
    def test_binarize(self):
        labels = [FeatureType.NUMERIC, FeatureType.LIST]
        assert binarize(labels, FeatureType.NUMERIC) == [True, False]

    def test_tool_coverage_matches_figure3(self):
        assert tool_covers("tfdv", FeatureType.SENTENCE)
        assert not tool_covers("tfdv", FeatureType.URL)
        assert not tool_covers("pandas", FeatureType.CATEGORICAL)
        assert tool_covers("autogluon", FeatureType.NOT_GENERALIZABLE)
        assert not tool_covers("transmogrifai", FeatureType.CATEGORICAL)

    def test_unknown_tool_raises(self):
        with pytest.raises(ValueError, match="unknown tool"):
            tool_covers("mystery", FeatureType.NUMERIC)

    def test_coverage_classes_ordered(self):
        classes = coverage_classes("tfdv")
        assert classes == [
            FeatureType.NUMERIC,
            FeatureType.CATEGORICAL,
            FeatureType.DATETIME,
            FeatureType.SENTENCE,
        ]

    def test_table1_classes(self):
        assert len(TABLE1_CLASSES) == 6
        assert set(TOOL_VOCABULARY) == {
            "tfdv", "pandas", "transmogrifai", "autogluon"
        }
