"""Tests + property tests for the synthetic corpus generators.

The critical invariant: a generated column must actually *be* what its label
says (Numeric columns parse as numbers, URL columns match the URL standard,
Not-Generalizable keys are unique or constant, ...).
"""

import numpy as np
import pytest

from repro.datagen.colnames import cryptic_name, render_name, survey_name
from repro.datagen.corpus import generate_corpus, sample_class_sequence
from repro.datagen.values import CLASS_GENERATORS, generate_column
from repro.tabular.column import Column
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)
from repro.types import ALL_FEATURE_TYPES, PAPER_CLASS_DISTRIBUTION, FeatureType


class TestColnames:
    def test_render_name_styles(self, rng):
        names = {render_name(rng, "zip_code") for _ in range(60)}
        assert len(names) > 3  # several casing styles appear

    def test_cryptic_name_short(self, rng):
        for _ in range(20):
            name = cryptic_name(rng)
            assert 2 <= len(name) <= 10

    def test_survey_name(self, rng):
        assert survey_name(rng).startswith("q")


class TestValueGenerators:
    @pytest.mark.parametrize("feature_type", ALL_FEATURE_TYPES)
    def test_every_class_generates(self, feature_type, rng):
        column = generate_column(feature_type, rng, 60)
        assert column.feature_type is feature_type
        assert len(column.cells) == 60
        assert column.name

    def test_numeric_values_parse(self, rng):
        for generator in CLASS_GENERATORS[FeatureType.NUMERIC]:
            column = generator(rng, 50)
            raw = Column(column.name, column.cells)
            present = raw.non_missing()
            assert present, column.style
            parsed = [try_parse_float(v) for v in present]
            assert all(v is not None for v in parsed), column.style

    def test_url_values_match_standard(self, rng):
        column = generate_column(FeatureType.URL, rng, 40)
        raw = Column(column.name, column.cells)
        assert all(looks_like_url(v) for v in raw.non_missing())

    def test_list_values_have_delimiters(self, rng):
        column = generate_column(FeatureType.LIST, rng, 40)
        raw = Column(column.name, column.cells)
        assert all(looks_like_list(v) for v in raw.non_missing())

    def test_datetime_values(self, rng):
        from repro.datagen.values import datetime_column

        for _ in range(10):
            column = datetime_column(rng, 30)
            raw = Column(column.name, column.cells)
            if column.style == "date_compact":
                continue  # compact dates are deliberately invisible to regexes
            assert all(
                looks_like_datetime(v) for v in raw.non_missing()
            ), column.style

    def test_embedded_numbers_not_plain_floats(self, rng):
        column = generate_column(FeatureType.EMBEDDED_NUMBER, rng, 40)
        raw = Column(column.name, column.cells)
        assert all(try_parse_float(v) is None for v in raw.non_missing())

    def test_ng_primary_keys_unique(self, rng):
        from repro.datagen.values import ng_primary_key

        column = ng_primary_key(rng, 80)
        assert len(set(column.cells)) == 80

    def test_ng_constant(self, rng):
        from repro.datagen.values import ng_constant

        column = ng_constant(rng, 40)
        assert len(set(column.cells)) == 1

    def test_ng_mostly_nan(self, rng):
        from repro.datagen.values import ng_mostly_nan

        column = ng_mostly_nan(rng, 300)
        raw = Column(column.name, column.cells)
        assert raw.n_missing() / len(raw) > 0.99

    def test_categorical_int_codes_are_integers(self, rng):
        from repro.datagen.values import categorical_int_code

        column = categorical_int_code(rng, 60)
        raw = Column(column.name, column.cells)
        values = raw.non_missing()
        assert all(v.isdigit() for v in values)
        assert len(set(values)) < 40  # bounded domain


class TestClassSequence:
    def test_exact_total(self, rng):
        labels = sample_class_sequence(1000, rng)
        assert len(labels) == 1000

    def test_distribution_close_to_paper(self, rng):
        labels = sample_class_sequence(2000, rng)
        for feature_type in ALL_FEATURE_TYPES:
            share = labels.count(feature_type) / 2000
            assert abs(share - PAPER_CLASS_DISTRIBUTION[feature_type]) < 0.01

    def test_small_corpus_covers_all_classes(self, rng):
        labels = sample_class_sequence(100, rng)
        assert set(labels) == set(ALL_FEATURE_TYPES)


class TestCorpus:
    def test_sizes(self, small_corpus):
        assert small_corpus.n_examples == 350
        assert small_corpus.n_files > 20

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="at least 50"):
            generate_corpus(n_examples=10)

    def test_profiles_match_truth(self, small_corpus):
        for profile in small_corpus.dataset.profiles:
            key = (profile.source_file, profile.name)
            assert small_corpus.truth[key] is profile.label

    def test_every_profile_has_a_raw_column(self, small_corpus):
        files = {table.name: table for table in small_corpus.files}
        for profile in small_corpus.dataset.profiles:
            assert profile.name in files[profile.source_file]

    def test_deterministic(self):
        a = generate_corpus(n_examples=120, seed=5)
        b = generate_corpus(n_examples=120, seed=5)
        assert a.dataset.names == b.dataset.names
        assert [p.samples for p in a.dataset.profiles] == [
            p.samples for p in b.dataset.profiles
        ]

    def test_different_seeds_differ(self):
        a = generate_corpus(n_examples=120, seed=5)
        b = generate_corpus(n_examples=120, seed=6)
        assert a.dataset.names != b.dataset.names

    def test_unique_column_names_within_file(self, small_corpus):
        for table in small_corpus.files:
            assert len(set(table.column_names)) == table.n_columns

    def test_stats_are_finite(self, small_corpus):
        matrix = small_corpus.dataset.stats_matrix()
        assert np.all(np.isfinite(matrix))
