"""Tests for the 30 downstream dataset generators."""

import numpy as np
import pytest

from repro.datagen.downstream import (
    DOWNSTREAM_SPECS,
    SPEC_BY_NAME,
    make_dataset,
)
from repro.types import FeatureType


def test_thirty_datasets_matching_paper_split():
    assert len(DOWNSTREAM_SPECS) == 30
    classification = [s for s in DOWNSTREAM_SPECS if s.task == "classification"]
    regression = [s for s in DOWNSTREAM_SPECS if s.task == "regression"]
    assert len(classification) == 25
    assert len(regression) == 5


@pytest.mark.parametrize(
    "name,n_cols,n_classes",
    [("Cancer", 9, 2), ("Mfeat", 216, 10), ("Nursery", 8, 5),
     ("Audiology", 69, 24), ("Hayes", 4, 3), ("Kropt", 6, 18),
     ("Flags", 28, 2), ("Pokemon", 40, 36), ("President", 26, 57),
     ("BBC", 1, 5), ("Car Fuel", 11, 0), ("MBA", 2, 0)],
)
def test_table5_compositions(name, n_cols, n_classes):
    spec = SPEC_BY_NAME[name]
    assert spec.n_columns == n_cols
    assert spec.n_classes == n_classes


def test_make_dataset_shapes():
    dataset = make_dataset(SPEC_BY_NAME["Hayes"], seed=0)
    assert dataset.table.n_columns == 4
    assert len(dataset.target) == len(dataset.table)
    assert set(dataset.true_types.values()) == {FeatureType.CATEGORICAL}


def test_classification_targets_are_balanced_classes():
    dataset = make_dataset(SPEC_BY_NAME["Nursery"], seed=1)
    counts = {}
    for label in dataset.target:
        counts[label] = counts.get(label, 0) + 1
    assert len(counts) == 5
    sizes = sorted(counts.values())
    assert sizes[0] >= sizes[-1] - 2  # quantile binning keeps them near-equal


def test_regression_targets_are_floats():
    dataset = make_dataset(SPEC_BY_NAME["Vineyard"], seed=2)
    assert all(isinstance(v, float) for v in dataset.target)


def test_true_types_cover_declared_composition():
    dataset = make_dataset(SPEC_BY_NAME["Pokemon"], seed=3)
    types = set(dataset.true_types.values())
    assert FeatureType.NUMERIC in types
    assert FeatureType.CATEGORICAL in types
    assert FeatureType.LIST in types
    assert FeatureType.NOT_GENERALIZABLE in types
    assert FeatureType.CONTEXT_SPECIFIC in types


def test_deterministic_given_seed():
    a = make_dataset(SPEC_BY_NAME["Boxing"], seed=9)
    b = make_dataset(SPEC_BY_NAME["Boxing"], seed=9)
    assert a.target == b.target
    assert list(a.table.rows()) == list(b.table.rows())


def test_ng_columns_carry_no_signal():
    dataset = make_dataset(SPEC_BY_NAME["Apnea2"], seed=4)
    ng_columns = [
        name for name, t in dataset.true_types.items()
        if t is FeatureType.NOT_GENERALIZABLE
    ]
    assert ng_columns
    column = dataset.table[ng_columns[0]]
    assert len(set(column.non_missing())) == len(column)  # a key


def test_unknown_kind_raises():
    from repro.datagen.downstream import ColumnSpec, DatasetSpec

    spec = DatasetSpec("X", "classification", 2, (ColumnSpec("bogus"),))
    with pytest.raises(ValueError, match="unknown downstream column kind"):
        make_dataset(spec)


def test_planted_signal_is_recoverable():
    """Sanity: with true types, a linear model beats chance comfortably."""
    from repro.downstream import evaluate_assignment, truth_assignments

    dataset = make_dataset(SPEC_BY_NAME["Nursery"], seed=5)
    score = evaluate_assignment(
        dataset, truth_assignments(dataset), "linear", seed=0
    )
    assert score.value > 40.0  # 5 classes, chance = 20
