"""Unit tests for the repro.obs telemetry layer."""

import io
import json

import pytest

from repro.obs import (
    NOOP_SPAN,
    RunManifest,
    Telemetry,
    Tracer,
    aggregate_spans,
    telemetry,
)
from repro.obs.export import spans_summary, spans_to_records, write_json, write_jsonl
from repro.obs.logging import StructLogger
from repro.obs.metrics import Histogram, MetricsRegistry, percentile


# -- spans ---------------------------------------------------------------------
def test_nested_spans_record_depth_and_parent():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner", detail="x"):
            pass
        with tracer.span("inner"):
            pass
    by_name = {}
    for record in tracer.records:
        by_name.setdefault(record.name, []).append(record)
    assert len(by_name["inner"]) == 2
    assert all(r.parent == "outer" and r.depth == 1 for r in by_name["inner"])
    outer = by_name["outer"][0]
    assert outer.parent is None and outer.depth == 0
    # children finish (and record) before their parent
    assert tracer.records[-1] is outer
    assert outer.wall_s >= max(r.wall_s for r in by_name["inner"])


def test_span_records_error_attribute():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert tracer.records[0].attrs["error"] == "RuntimeError"


def test_span_set_attaches_attrs():
    tracer = Tracer()
    with tracer.span("s") as sp:
        sp.set(rows=7)
    assert tracer.records[0].attrs["rows"] == 7


def test_tracer_caps_records():
    tracer = Tracer(max_records=3)
    for _ in range(5):
        with tracer.span("s"):
            pass
    assert len(tracer.records) == 3
    assert tracer.dropped == 2


def test_aggregate_spans_totals():
    tracer = Tracer()
    for _ in range(4):
        with tracer.span("stage"):
            pass
    summary = aggregate_spans(tracer.records)
    assert summary["stage"]["count"] == 4
    assert summary["stage"]["wall_s"] >= 0.0
    assert summary["stage"]["mean_wall_s"] == pytest.approx(
        summary["stage"]["wall_s"] / 4
    )


# -- metrics -------------------------------------------------------------------
def test_counter_gauge_roundtrip():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(2.5)
    registry.gauge("g").set(1.25)
    snap = registry.snapshot()
    assert snap["counters"]["c"] == 3.5
    assert snap["gauges"]["g"] == 1.25


def test_histogram_percentiles():
    h = Histogram("h")
    for v in range(1, 101):  # 1..100
        h.observe(float(v))
    s = h.summary()
    assert s["count"] == 100
    assert s["min"] == 1.0 and s["max"] == 100.0
    assert s["mean"] == pytest.approx(50.5)
    assert s["p50"] == pytest.approx(50.5)
    assert s["p90"] == pytest.approx(90.1)
    assert s["p99"] == pytest.approx(99.01)


def test_histogram_thinning_keeps_exact_aggregates():
    h = Histogram("h", max_samples=64)
    for v in range(1000):
        h.observe(float(v))
    assert h.count == 1000
    assert h.total == pytest.approx(sum(range(1000)))
    assert len(h._samples) < 64
    # percentiles stay approximately right after thinning
    assert h.percentile(50) == pytest.approx(500, abs=60)


def test_percentile_edge_cases():
    assert percentile([], 50) == 0.0
    assert percentile([3.0], 99) == 3.0
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)


# -- no-op mode ----------------------------------------------------------------
def test_disabled_telemetry_keeps_no_records():
    t = Telemetry()
    assert not t.enabled
    assert t.span("x") is NOOP_SPAN
    with t.span("x", a=1) as sp:
        pass
    assert sp.wall_s == 0.0
    t.count("c")
    t.gauge("g", 1.0)
    t.observe("h", 1.0)
    t.info("event", k="v")
    assert len(t.spans) == 0
    assert len(t.metrics) == 0
    assert t.logger.emitted == 0


def test_enable_disable_cycle():
    t = Telemetry()
    t.enable()
    with t.span("x"):
        pass
    t.count("c", 2)
    assert len(t.spans) == 1
    assert t.metrics.snapshot()["counters"]["c"] == 2
    t.disable()
    with t.span("y"):
        pass
    assert len(t.spans) == 1
    t.reset()
    assert len(t.spans) == 0
    assert len(t.metrics) == 0


def test_global_singleton_default_disabled():
    assert telemetry.enabled is False


# -- logging -------------------------------------------------------------------
def test_logger_levels_and_format():
    stream = io.StringIO()
    logger = StructLogger(level="info", stream=stream)
    logger.debug("hidden", a=1)
    logger.info("shown", text="two words", n=3, frac=0.5)
    out = stream.getvalue()
    assert "hidden" not in out
    assert "level=info" in out
    assert "event=shown" in out
    assert 'text="two words"' in out
    assert "n=3" in out
    assert logger.emitted == 1


def test_logger_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        StructLogger(level="loud")


# -- manifest + export ---------------------------------------------------------
def test_manifest_round_trip(tmp_path):
    t = Telemetry().enable()
    with t.span("featurize.table"):
        pass
    t.count("featurize.columns", 12)
    manifest = RunManifest(
        command="repro-bench", argv=["table1"], seed=0, scale=300
    )
    manifest.add_experiment("table1", wall_s=1.5)
    manifest.finalize(t)
    path = tmp_path / "run.json"
    manifest.write(str(path))
    data = json.loads(path.read_text())
    assert data["schema_version"] == 1
    assert data["command"] == "repro-bench"
    assert data["seed"] == 0 and data["scale"] == 300
    assert data["experiments"] == [{"name": "table1", "wall_s": 1.5}]
    assert data["spans"]["featurize.table"]["count"] == 1
    assert data["metrics"]["counters"]["featurize.columns"] == 12
    assert data["finished_at"] >= data["started_at"]
    assert isinstance(data["python"], str)


def test_write_jsonl_and_spans_export(tmp_path):
    tracer = Tracer()
    with tracer.span("a", k="v"):
        with tracer.span("b"):
            pass
    records = spans_to_records(tracer.records)
    path = tmp_path / "spans.jsonl"
    n = write_jsonl(str(path), records)
    assert n == 2
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    assert {line["name"] for line in lines} == {"a", "b"}
    assert spans_summary(tracer.records)["a"]["count"] == 1


def test_write_json_creates_parents(tmp_path):
    path = tmp_path / "deep" / "dir" / "m.json"
    write_json(str(path), {"x": 1})
    assert json.loads(path.read_text()) == {"x": 1}
