"""Tests + property tests for the distance functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.distances import (
    euclidean_one_vs_many,
    levenshtein,
    levenshtein_many_vs_many,
    levenshtein_many_vs_many_banded,
    levenshtein_one_vs_many,
    levenshtein_one_vs_many_banded,
    pairwise_euclidean,
)

short_text = st.text(alphabet="abcxyz_0123", max_size=12)
unicode_text = st.text(max_size=16)  # arbitrary unicode, incl. astral


def reference_levenshtein(a: str, b: str) -> int:
    dp = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        prev, dp[0] = dp[0], i
        for j, cb in enumerate(b, 1):
            prev, dp[j] = dp[j], min(dp[j] + 1, dp[j - 1] + 1, prev + (ca != cb))
    return dp[len(b)]


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("a", "", 1), ("", "abc", 3), ("kitten", "sitting", 3),
         ("flaw", "lawn", 2), ("abc", "abc", 0), ("zip_code", "zipcode", 1)],
    )
    def test_known(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(short_text, short_text)
    def test_matches_reference(self, a, b):
        assert levenshtein(a, b) == reference_levenshtein(a, b)

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestOneVsMany:
    @given(short_text, st.lists(short_text, max_size=15))
    def test_matches_pairwise(self, query, corpus):
        got = levenshtein_one_vs_many(query, corpus)
        expected = [levenshtein(query, s) for s in corpus]
        assert got.tolist() == expected

    def test_empty_corpus(self):
        assert levenshtein_one_vs_many("abc", []).shape == (0,)

    def test_all_empty_strings(self):
        assert levenshtein_one_vs_many("ab", ["", ""]).tolist() == [2, 2]


class TestBandedLevenshtein:
    """The banded early-exit kernel vs the exact kernels.

    Contract: entries whose true distance is <= cap are exact; everything
    beyond the cap is reported as exactly cap + 1.
    """

    @given(unicode_text, st.lists(unicode_text, max_size=10),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=150)
    def test_one_vs_many_matches_exact(self, query, corpus, cap):
        got = levenshtein_one_vs_many_banded(query, corpus, cap)
        exact = np.array(
            [levenshtein(query, s) for s in corpus], dtype=got.dtype
        ).reshape(got.shape)
        within = exact <= cap
        assert np.array_equal(got[within], exact[within])
        assert np.all(got[~within] == cap + 1)

    @given(st.lists(unicode_text, max_size=6),
           st.lists(unicode_text, max_size=6),
           st.integers(min_value=0, max_value=12))
    @settings(max_examples=80)
    def test_many_vs_many_matches_exact(self, queries, corpus, cap):
        got = levenshtein_many_vs_many_banded(queries, corpus, cap)
        exact = levenshtein_many_vs_many(queries, corpus)
        assert got.shape == exact.shape
        within = exact <= cap
        assert np.array_equal(got[within], exact[within])
        assert np.all(got[~within] == cap + 1)

    @given(st.lists(short_text, max_size=8), st.lists(short_text, max_size=8))
    @settings(max_examples=60)
    def test_huge_cap_is_fully_exact(self, queries, corpus):
        # with a cap no distance can reach, banded must equal exact everywhere
        got = levenshtein_many_vs_many_banded(queries, corpus, 100)
        assert np.array_equal(got, levenshtein_many_vs_many(queries, corpus))

    def test_cap_zero_flags_only_equal_strings(self):
        got = levenshtein_one_vs_many_banded("abc", ["abc", "abd", "abc"], 0)
        assert got.tolist() == [0, 1, 0]

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            levenshtein_one_vs_many_banded("a", ["b"], -1)
        with pytest.raises(ValueError):
            levenshtein_many_vs_many_banded(["a"], ["b"], -1)

    def test_empty_inputs(self):
        assert levenshtein_one_vs_many_banded("abc", [], 3).shape == (0,)
        assert levenshtein_many_vs_many_banded([], ["x"], 3).shape == (0, 1)
        assert levenshtein_many_vs_many_banded(["x"], [], 3).shape == (1, 0)

    def test_length_bound_shortcut(self):
        # |len(a) - len(b)| > cap means the pair is clipped without DP
        got = levenshtein_one_vs_many_banded("ab", ["abcdefgh"], 3)
        assert got.tolist() == [4]

    def test_repeated_queries_share_computation(self):
        got = levenshtein_many_vs_many_banded(
            ["dog", "cat", "dog"], ["dot", "cut"], 2
        )
        assert np.array_equal(got[0], got[2])


class TestEuclidean:
    def test_one_vs_many(self):
        corpus = np.array([[0.0, 0.0], [3.0, 4.0]])
        got = euclidean_one_vs_many(np.array([0.0, 0.0]), corpus)
        assert got.tolist() == [0.0, 5.0]

    def test_pairwise_matches_direct(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        got = pairwise_euclidean(a, b)
        for i in range(5):
            for j in range(7):
                assert got[i, j] == pytest.approx(
                    float(np.linalg.norm(a[i] - b[j])), abs=1e-9
                )

    def test_pairwise_self_diagonal_zero(self, rng):
        a = rng.normal(size=(6, 4))
        d = pairwise_euclidean(a, a)
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)
