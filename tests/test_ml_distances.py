"""Tests + property tests for the distance functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.distances import (
    euclidean_one_vs_many,
    levenshtein,
    levenshtein_one_vs_many,
    pairwise_euclidean,
)

short_text = st.text(alphabet="abcxyz_0123", max_size=12)


def reference_levenshtein(a: str, b: str) -> int:
    dp = list(range(len(b) + 1))
    for i, ca in enumerate(a, 1):
        prev, dp[0] = dp[0], i
        for j, cb in enumerate(b, 1):
            prev, dp[j] = dp[j], min(dp[j] + 1, dp[j - 1] + 1, prev + (ca != cb))
    return dp[len(b)]


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,expected",
        [("", "", 0), ("a", "", 1), ("", "abc", 3), ("kitten", "sitting", 3),
         ("flaw", "lawn", 2), ("abc", "abc", 0), ("zip_code", "zipcode", 1)],
    )
    def test_known(self, a, b, expected):
        assert levenshtein(a, b) == expected

    @given(short_text, short_text)
    def test_matches_reference(self, a, b):
        assert levenshtein(a, b) == reference_levenshtein(a, b)

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text, short_text, short_text)
    @settings(max_examples=50)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestOneVsMany:
    @given(short_text, st.lists(short_text, max_size=15))
    def test_matches_pairwise(self, query, corpus):
        got = levenshtein_one_vs_many(query, corpus)
        expected = [levenshtein(query, s) for s in corpus]
        assert got.tolist() == expected

    def test_empty_corpus(self):
        assert levenshtein_one_vs_many("abc", []).shape == (0,)

    def test_all_empty_strings(self):
        assert levenshtein_one_vs_many("ab", ["", ""]).tolist() == [2, 2]


class TestEuclidean:
    def test_one_vs_many(self):
        corpus = np.array([[0.0, 0.0], [3.0, 4.0]])
        got = euclidean_one_vs_many(np.array([0.0, 0.0]), corpus)
        assert got.tolist() == [0.0, 5.0]

    def test_pairwise_matches_direct(self, rng):
        a = rng.normal(size=(5, 3))
        b = rng.normal(size=(7, 3))
        got = pairwise_euclidean(a, b)
        for i in range(5):
            for j in range(7):
                assert got[i, j] == pytest.approx(
                    float(np.linalg.norm(a[i] - b[j])), abs=1e-9
                )

    def test_pairwise_self_diagonal_zero(self, rng):
        a = rng.normal(size=(6, 4))
        d = pairwise_euclidean(a, a)
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)
