"""Deeper property tests on the ML/NN substrates (reference checks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.svm import rbf_kernel
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.nn.layers import Conv1D, GlobalMaxPool1D


class TestConvReference:
    @given(
        st.integers(1, 3),   # batch
        st.integers(3, 8),   # seq
        st.integers(1, 4),   # in channels
        st.integers(1, 4),   # out channels
        st.integers(1, 3),   # kernel
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_naive_convolution(self, batch, seq, cin, cout, kernel):
        rng = np.random.default_rng(batch * 100 + seq)
        conv = Conv1D(cin, cout, kernel, rng)
        x = rng.normal(size=(batch, seq, cin))
        got = conv.forward(x)
        out_seq = max(seq, kernel) - kernel + 1
        padded = x
        if seq < kernel:
            padded = np.pad(x, ((0, 0), (0, kernel - seq), (0, 0)))
        expected = np.zeros((batch, out_seq, cout))
        for b in range(batch):
            for o in range(out_seq):
                for f in range(cout):
                    acc = conv.bias[f]
                    for k in range(kernel):
                        for c in range(cin):
                            acc += padded[b, o + k, c] * conv.weight[k, c, f]
                    expected[b, o, f] = acc
        assert np.allclose(got, expected, atol=1e-10)


class TestKernelProperties:
    @given(st.integers(2, 12), st.floats(0.01, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_rbf_kernel_is_psd_with_unit_diagonal(self, n, gamma):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 3))
        K = rbf_kernel(X, X, gamma)
        assert np.allclose(np.diag(K), 1.0)
        assert np.allclose(K, K.T, atol=1e-12)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-8
        assert K.min() >= 0.0 and K.max() <= 1.0 + 1e-12


class TestTreeInvariants:
    @given(st.integers(20, 80), st.integers(1, 6))
    @settings(max_examples=20, deadline=None)
    def test_classifier_prediction_is_a_training_class(self, n, depth):
        rng = np.random.default_rng(n * depth)
        X = rng.normal(size=(n, 3))
        y = [str(int(v > 0)) for v in X[:, 0]]
        if len(set(y)) < 2:
            return
        tree = DecisionTreeClassifier(max_depth=depth).fit(X, y)
        queries = rng.normal(size=(30, 3)) * 10
        for prediction in tree.predict(queries):
            assert prediction in set(y)

    @given(st.integers(20, 80))
    @settings(max_examples=20, deadline=None)
    def test_regressor_predictions_within_target_range(self, n):
        rng = np.random.default_rng(n)
        X = rng.normal(size=(n, 2))
        y = rng.uniform(-5, 5, size=n)
        tree = DecisionTreeRegressor(max_depth=8).fit(X, y)
        predictions = tree.predict(rng.normal(size=(40, 2)) * 10)
        # leaf means can never leave the convex hull of the targets
        assert predictions.min() >= y.min() - 1e-9
        assert predictions.max() <= y.max() + 1e-9

    def test_depth_zero_equivalent_prior(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = ["a", "a", "a", "b"]
        tree = DecisionTreeClassifier(max_depth=0).fit(X, y)
        probs = tree.predict_proba(X)
        assert np.allclose(probs[:, 0], 0.75)


class TestPoolInvariants:
    @given(st.integers(1, 4), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_global_max_pool_matches_numpy(self, batch, seq, channels):
        rng = np.random.default_rng(batch + seq)
        pool = GlobalMaxPool1D()
        x = rng.normal(size=(batch, seq, channels))
        assert np.allclose(pool.forward(x), x.max(axis=1))

    def test_pool_gradient_routes_to_argmax_only(self):
        pool = GlobalMaxPool1D()
        x = np.array([[[1.0], [3.0], [2.0]]])
        pool.forward(x)
        grad = pool.backward(np.array([[7.0]]))
        assert grad[0, 1, 0] == 7.0
        assert grad.sum() == 7.0
