"""repro-obs: trace show / trace merge / trend."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import (
    build_tree,
    classify_delta,
    critical_path,
    dedupe_spans,
    flatten_numeric,
    main,
    render_tree,
)
from repro.obs.export import read_jsonl, write_jsonl

TRACE = "ab" * 16


def _span(name, span_id, parent=None, started=0.0, wall=1.0, trace=TRACE,
          **attrs):
    record = {
        "name": name,
        "started_at": started,
        "wall_s": wall,
        "cpu_s": wall / 2,
        "depth": 0,
        "parent": None,
        "trace_id": trace,
        "span_id": span_id,
    }
    if parent is not None:
        record["parent_span_id"] = parent
    if attrs:
        record["attrs"] = attrs
    return record


@pytest.fixture
def serve_trace(tmp_path):
    """A client file + server file forming one cross-process trace."""
    client = [
        _span("client.request", "c" * 16, started=0.0, wall=1.0),
    ]
    server = [
        _span("serve.request", "d" * 16, parent="c" * 16,
              started=0.1, wall=0.8),
        _span("serve.queue_wait", "e" * 16, parent="d" * 16,
              started=0.1, wall=0.1),
        _span("serve.batch", "f" * 16, parent="d" * 16,
              started=0.2, wall=0.6, n_requests=1),
        _span("serve.predict", "1" * 16, parent="f" * 16,
              started=0.3, wall=0.5),
    ]
    client_path = tmp_path / "client.jsonl"
    server_path = tmp_path / "server.jsonl"
    write_jsonl(client_path, client)
    write_jsonl(server_path, server)
    return str(client_path), str(server_path)


class TestTraceTree:
    def test_build_tree_links_across_files(self, serve_trace):
        client_path, server_path = serve_trace
        records = list(read_jsonl(client_path)) + list(read_jsonl(server_path))
        roots, children = build_tree(records)
        assert [r["name"] for r in roots] == ["client.request"]
        assert [r["name"] for r in children["c" * 16]] == ["serve.request"]
        assert sorted(r["name"] for r in children["d" * 16]) == [
            "serve.batch", "serve.queue_wait",
        ]

    def test_orphans_become_roots(self):
        records = [_span("lonely", "a" * 16, parent="9" * 16)]
        roots, children = build_tree(records)
        assert len(roots) == 1
        assert not children

    def test_critical_path_follows_longest_children(self):
        records = [
            _span("root", "a" * 16, wall=3.0),
            _span("short", "b" * 16, parent="a" * 16, wall=0.5),
            _span("long", "c" * 16, parent="a" * 16, wall=2.0),
            _span("leaf", "d" * 16, parent="c" * 16, wall=1.5),
        ]
        roots, children = build_tree(records)
        names = [r["name"] for r in critical_path(roots, children)]
        assert names == ["root", "long", "leaf"]

    def test_render_tree_marks_critical_path(self):
        records = [
            _span("root", "a" * 16, wall=2.0),
            _span("child", "b" * 16, parent="a" * 16, wall=1.0, table="t1"),
        ]
        text = render_tree(records)
        assert "* root" in text
        assert "table=t1" in text
        assert "critical path (2 spans" in text
        assert "root > child" in text

    def test_dedupe_keeps_first_occurrence(self):
        record = _span("x", "a" * 16)
        assert len(dedupe_spans([record, dict(record)])) == 1


class TestTraceCommands:
    def test_show_renders_merged_tree(self, serve_trace, capsys):
        assert main(["trace", "show", *serve_trace]) == 0
        out = capsys.readouterr().out
        assert f"trace {TRACE} — 5 spans" in out
        # Server spans are indented under the client root.
        assert "* client.request" in out
        assert "  serve.request" in out
        assert "serve.predict" in out

    def test_show_unknown_trace_id_fails(self, serve_trace, capsys):
        assert main(["trace", "show", serve_trace[0],
                     "--trace-id", "f" * 32]) == 1
        assert "not found" in capsys.readouterr().err

    def test_show_no_records_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "show", str(empty)]) == 1

    def test_merge_writes_single_sorted_file(self, serve_trace, tmp_path):
        merged = tmp_path / "merged.jsonl"
        assert main(["trace", "merge", *serve_trace, "-o", str(merged)]) == 0
        records = list(read_jsonl(merged))
        assert len(records) == 5
        assert [r["started_at"] for r in records] == sorted(
            r["started_at"] for r in records
        )
        assert all("_file" not in r for r in records)
        # Merged file round-trips through show.
        assert main(["trace", "show", str(merged)]) == 0

    def test_merge_filters_by_trace_id(self, serve_trace, tmp_path):
        other = tmp_path / "other.jsonl"
        write_jsonl(other, [_span("alien", "2" * 16, trace="cd" * 16)])
        merged = tmp_path / "merged.jsonl"
        assert main(["trace", "merge", *serve_trace, str(other),
                     "-o", str(merged), "--trace-id", TRACE]) == 0
        records = list(read_jsonl(merged))
        assert len(records) == 5
        assert all(r["trace_id"] == TRACE for r in records)

    def test_merge_to_stdout(self, serve_trace, capsys):
        assert main(["trace", "merge", serve_trace[0]]) == 0
        line = capsys.readouterr().out.strip().splitlines()[0]
        assert json.loads(line)["name"] == "client.request"


class TestTrendClassification:
    def test_latency_up_is_regression(self):
        assert classify_delta("server.latency_s.p99", 1.0, 2.0) == "regression"
        assert classify_delta("server.latency_s.p99", 2.0, 1.0) == "improvement"

    def test_throughput_down_is_regression(self):
        assert classify_delta("server.columns_per_s", 100, 50) == "regression"
        assert classify_delta("server.columns_per_s", 50, 100) == "improvement"

    def test_neutral_metrics_are_ignored(self):
        assert classify_delta("knobs.batch_window", 1, 2) is None

    def test_flatten_skips_lists_and_bools(self):
        flat = flatten_numeric(
            {"a": {"b": 1.5}, "ok": True, "runs": [1, 2], "n": 3}
        )
        assert flat == {"a.b": 1.5, "n": 3.0}


class TestTrendCommand:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_flags_regressions_across_files(self, tmp_path, capsys):
        old = self._write(tmp_path / "a.json", {
            "server": {"columns_per_s": 1000.0, "latency_s": {"p99": 0.1}},
        })
        new = self._write(tmp_path / "b.json", {
            "server": {"columns_per_s": 500.0, "latency_s": {"p99": 0.3}},
        })
        assert main(["trend", old, new]) == 0  # non-strict: informational
        out = capsys.readouterr().out
        assert "REGRESSION  server.columns_per_s: 1000 -> 500 (-50.0%)" in out
        assert "REGRESSION  server.latency_s.p99" in out
        assert "2 regression(s) flagged across 1 comparison(s)" in out

    def test_strict_exits_nonzero_on_regression(self, tmp_path):
        old = self._write(tmp_path / "a.json", {"wall_s": 1.0})
        new = self._write(tmp_path / "b.json", {"wall_s": 10.0})
        assert main(["trend", old, new, "--strict"]) == 1

    def test_improvements_pass_strict(self, tmp_path, capsys):
        old = self._write(tmp_path / "a.json", {"wall_s": 10.0})
        new = self._write(tmp_path / "b.json", {"wall_s": 1.0})
        assert main(["trend", old, new, "--strict"]) == 0
        assert "improved " in capsys.readouterr().out

    def test_threshold_suppresses_small_changes(self, tmp_path, capsys):
        old = self._write(tmp_path / "a.json", {"wall_s": 100.0})
        new = self._write(tmp_path / "b.json", {"wall_s": 104.0})
        assert main(["trend", old, new, "--strict"]) == 0
        assert "no changes past 10%" in capsys.readouterr().out

    def test_disjoint_files_compare_empty(self, tmp_path, capsys):
        old = self._write(tmp_path / "a.json", {"x": 1.0})
        new = self._write(tmp_path / "b.json", {"y": 2.0})
        assert main(["trend", old, new]) == 0
        assert "no overlapping numeric metrics" in capsys.readouterr().out

    def test_unreadable_file_exits_2(self, tmp_path):
        good = self._write(tmp_path / "a.json", {"x": 1.0})
        assert main(["trend", good, str(tmp_path / "missing.json")]) == 2

    def test_single_file_exits_2(self, tmp_path):
        good = self._write(tmp_path / "a.json", {"x": 1.0})
        assert main(["trend", good]) == 2

    def test_committed_bench_files_compare(self, capsys):
        # The repo's own evidence files must stay trend-comparable.
        import os
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        pr2 = os.path.join(repo, "BENCH_pr2.json")
        pr3 = os.path.join(repo, "BENCH_pr3.json")
        if not (os.path.exists(pr2) and os.path.exists(pr3)):
            pytest.skip("committed BENCH files not present")
        assert main(["trend", pr2, pr3]) == 0
        assert "==" in capsys.readouterr().out
