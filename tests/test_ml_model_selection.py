"""Tests for splitting, cross-validation, and grid search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.linear import LogisticRegression
from repro.ml.model_selection import (
    GridSearchCV,
    GroupKFold,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100)[:, None].astype(float)
        x_tr, x_te = train_test_split(X, test_size=0.2, random_state=0)
        assert len(x_te) == 20
        assert len(x_tr) == 80

    def test_disjoint_and_complete(self):
        X = np.arange(50).astype(float)[:, None]
        x_tr, x_te = train_test_split(X, test_size=0.3, random_state=1)
        together = sorted(x_tr[:, 0].tolist() + x_te[:, 0].tolist())
        assert together == list(range(50))

    def test_stratified_keeps_class_ratio(self):
        y = ["a"] * 80 + ["b"] * 20
        X = np.zeros((100, 1))
        _x_tr, _x_te, y_tr, y_te = train_test_split(
            X, y, test_size=0.25, random_state=0, stratify=y
        )
        assert y_te.count("b") == 5
        assert y_tr.count("b") == 15

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(30).astype(float)[:, None]
        y = [str(i) for i in range(30)]
        x_tr, x_te, y_tr, y_te = train_test_split(X, y, random_state=2)
        for row, label in zip(x_te, y_te):
            assert str(int(row[0])) == label

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((3, 1)), [1, 2])


class TestKFold:
    @given(st.integers(10, 60), st.integers(2, 5))
    @settings(max_examples=20)
    def test_partition(self, n, k):
        folds = list(KFold(n_splits=k, random_state=0).split(n))
        assert len(folds) == k
        all_test = np.concatenate([test for _train, test in folds])
        assert sorted(all_test.tolist()) == list(range(n))
        for train, test in folds:
            assert set(train.tolist()).isdisjoint(test.tolist())

    def test_bad_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_each_fold_has_each_class(self):
        y = ["a"] * 50 + ["b"] * 10
        for _train, test in StratifiedKFold(n_splits=5).split(y):
            labels = {y[i] for i in test}
            assert labels == {"a", "b"}


class TestGroupKFold:
    def test_groups_never_split(self):
        groups = [f"g{i // 4}" for i in range(40)]  # 10 groups of 4
        for train, test in GroupKFold(n_splits=5).split(groups):
            train_groups = {groups[i] for i in train}
            test_groups = {groups[i] for i in test}
            assert train_groups.isdisjoint(test_groups)

    def test_too_few_groups_raises(self):
        with pytest.raises(ValueError, match="groups"):
            list(GroupKFold(n_splits=5).split(["a", "b", "a"]))


class TestGridSearch:
    def test_explores_grid_and_fits_best(self, rng):
        X = np.vstack([rng.normal(0, 1, (60, 3)), rng.normal(3, 1, (60, 3))])
        y = ["a"] * 60 + ["b"] * 60
        search = GridSearchCV(
            LogisticRegression(), {"C": [1e-4, 1.0]}, random_state=0
        )
        search.fit(X, y)
        assert search.best_params_["C"] in (1e-4, 1.0)
        assert search.best_score_ > 0.85
        assert search.score(X, y) > 0.9
        assert len(search.cv_results_) == 2

    def test_cv_mode(self, rng):
        X = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(3, 1, (40, 2))])
        y = ["a"] * 40 + ["b"] * 40
        search = GridSearchCV(LogisticRegression(), {"C": [1.0]}, cv=3)
        search.fit(X, y)
        assert 0.5 < search.best_score_ <= 1.0


def test_cross_val_score_shape(rng):
    X = np.vstack([rng.normal(0, 1, (30, 2)), rng.normal(3, 1, (30, 2))])
    y = ["a"] * 30 + ["b"] * 30
    scores = cross_val_score(LogisticRegression(), X, y, cv=3)
    assert scores.shape == (3,)
    assert np.all((scores >= 0) & (scores <= 1))
