"""Tests for the golden-prediction regression gate (repro-bench goldens)."""

import json

import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.goldens import (
    GOLDEN_SCHEMA_VERSION,
    GoldenMismatchError,
    check_goldens,
    class_affinity,
    default_golden_path,
    load_goldens,
    record_goldens,
    write_goldens,
)
from repro.benchmark.runner import main

FAST_MODELS = ("rf", "knn")  # skip the CNN: the gate logic is model-agnostic


@pytest.fixture(scope="module")
def tiny_context():
    return BenchmarkContext(n_examples=120, seed=3, rf_estimators=10)


@pytest.fixture(scope="module")
def recorded(tiny_context):
    return record_goldens(tiny_context, FAST_MODELS)


class TestRecord:
    def test_payload_shape(self, recorded):
        assert recorded["schema_version"] == GOLDEN_SCHEMA_VERSION
        assert recorded["corpus"] == {"n_examples": 120, "seed": 3}
        assert set(recorded["models"]) == set(FAST_MODELS)
        n = len(recorded["columns"])
        assert n == 120
        for name in FAST_MODELS:
            entry = recorded["models"][name]
            assert len(entry["predictions"]) == n
            assert 0.0 <= entry["accuracy"] <= 1.0
            assert sum(
                sum(row.values()) for row in entry["confusion"].values()
            ) == n

    def test_columns_carry_truth_and_identity(self, recorded):
        first = recorded["columns"][0]
        assert set(first) == {"file", "column", "truth"}

    def test_roundtrip_via_file(self, recorded, tmp_path):
        path = tmp_path / "g.json"
        write_goldens(path, recorded)
        assert load_goldens(path) == recorded
        # deterministic serialization: a second write is byte-identical
        blob = path.read_bytes()
        write_goldens(path, recorded)
        assert path.read_bytes() == blob


class TestCheck:
    def test_self_check_is_exact(self, tiny_context, recorded):
        report = check_goldens(tiny_context, recorded, strict=True)
        assert report.ok
        for check in report.models:
            assert check.exact
            assert check.similarity == 1.0
            assert check.accuracy_new == check.accuracy_golden

    def test_injected_drift_enumerated(self, tiny_context, recorded):
        tampered = json.loads(json.dumps(recorded))
        preds = tampered["models"]["rf"]["predictions"]
        original = preds[0]
        preds[0] = "Sentence" if original != "Sentence" else "Numeric"
        preds[5] = "URL" if preds[5] != "URL" else "List"
        report = check_goldens(tiny_context, tampered, models=("rf",))
        (check,) = report.models
        assert check.n_exact == check.n_columns - 2
        assert len(check.drifted) == 2
        assert check.drifted[0].golden != check.drifted[0].new
        assert check.similarity < 1.0

    def test_strict_fails_on_any_drift(self, tiny_context, recorded):
        tampered = json.loads(json.dumps(recorded))
        preds = tampered["models"]["rf"]["predictions"]
        preds[0] = "Sentence" if preds[0] != "Sentence" else "Numeric"
        lax = check_goldens(
            tiny_context, tampered, models=("rf",), similarity_floor=0.5
        )
        assert lax.ok  # one flip out of 120 clears a lax floor
        strict = check_goldens(
            tiny_context, tampered, models=("rf",),
            similarity_floor=0.5, strict=True,
        )
        assert not strict.ok
        assert "FAIL" in strict.render()

    def test_similarity_floor_fails_heavy_drift(self, tiny_context, recorded):
        tampered = json.loads(json.dumps(recorded))
        preds = tampered["models"]["rf"]["predictions"]
        for i in range(0, 40):
            preds[i] = "Sentence" if preds[i] != "Sentence" else "Numeric"
        report = check_goldens(tiny_context, tampered, models=("rf",))
        assert not report.ok

    def test_corpus_mismatch_rejected(self, recorded):
        other = BenchmarkContext(n_examples=100, seed=9)
        with pytest.raises(GoldenMismatchError, match="corpus"):
            check_goldens(other, recorded)

    def test_missing_model_rejected(self, tiny_context, recorded):
        with pytest.raises(GoldenMismatchError, match="no recording"):
            check_goldens(tiny_context, recorded, models=("svm",))

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(GoldenMismatchError, match="cannot read"):
            load_goldens(path)
        path.write_text("{\"schema_version\": 99}")
        with pytest.raises(GoldenMismatchError, match="schema"):
            load_goldens(path)


class TestAffinity:
    def test_identical_classes(self):
        assert class_affinity({}, "Numeric", "Numeric") == 1.0

    def test_never_confused_pair_scores_zero(self):
        confusion = {"Numeric": {"Numeric": 10}, "URL": {"URL": 5}}
        assert class_affinity(confusion, "Numeric", "URL") == 0.0

    def test_often_confused_pair_scores_high(self):
        confusion = {
            "Numeric": {"Numeric": 6, "Categorical": 4},
            "Categorical": {"Categorical": 5, "Numeric": 5},
        }
        affinity = class_affinity(confusion, "Numeric", "Categorical")
        assert affinity == pytest.approx(9 / 20)
        # symmetric by construction
        assert affinity == class_affinity(confusion, "Categorical", "Numeric")

    def test_unseen_classes_score_zero(self):
        assert class_affinity({}, "Numeric", "URL") == 0.0


class TestCLI:
    def test_record_then_check(self, tmp_path, capsys):
        path = tmp_path / "goldens.json"
        exit_code = main([
            "goldens", "record", "--scale", "120", "--seed", "3",
            "--models", "rf,knn", "--path", str(path),
        ])
        assert exit_code == 0
        assert path.exists()
        exit_code = main([
            "goldens", "check", "--scale", "120", "--seed", "3",
            "--path", str(path), "--strict",
        ])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "goldens: PASS" in out

    def test_check_fails_on_drift(self, tmp_path, capsys):
        path = tmp_path / "goldens.json"
        main([
            "goldens", "record", "--scale", "120", "--seed", "3",
            "--models", "rf", "--path", str(path),
        ])
        payload = json.loads(path.read_text())
        preds = payload["models"]["rf"]["predictions"]
        preds[0] = "Sentence" if preds[0] != "Sentence" else "Numeric"
        path.write_text(json.dumps(payload))
        exit_code = main([
            "goldens", "check", "--scale", "120", "--seed", "3",
            "--path", str(path), "--strict",
        ])
        assert exit_code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_check_missing_file_is_error(self, tmp_path, capsys):
        exit_code = main([
            "goldens", "check", "--scale", "120", "--seed", "3",
            "--path", str(tmp_path / "missing.json"),
        ])
        assert exit_code == 2

    def test_default_path_shape(self):
        assert default_golden_path(300, 1).endswith(
            "benchmarks/goldens/corpus-s300-seed1.json"
        )
