"""Cross-cutting property tests on the full profile → prediction path."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featurize import profile_column
from repro.core.stats import N_STATS
from repro.tabular.column import Column
from repro.tools import (
    AutoGluonTool,
    PandasTool,
    RuleBaselineTool,
    TFDVTool,
    TransmogrifAITool,
)
from repro.types import ALL_FEATURE_TYPES

# arbitrary raw columns: mixed tokens, numbers, missing cells
arbitrary_cells = st.lists(
    st.one_of(
        st.none(),
        st.integers(-10**6, 10**6).map(str),
        st.floats(-1e6, 1e6, allow_nan=False).map(lambda v: f"{v:.4f}"),
        st.text(alphabet="abcdef ;,/:._-0123456789", max_size=25),
        st.sampled_from(["USD 42", "https://www.x.com", "2020-01-01",
                         "a; b; c", "NA", ""]),
    ),
    min_size=1,
    max_size=30,
)

column_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=20
)

_TOOLS = (
    TFDVTool(), PandasTool(), TransmogrifAITool(), AutoGluonTool(),
    RuleBaselineTool(),
)


@given(column_names, arbitrary_cells)
@settings(max_examples=80, deadline=None)
def test_every_tool_totally_classifies_any_column(name, cells):
    """Tools never crash and always emit a vocabulary class."""
    column = Column(name, cells)
    for tool in _TOOLS:
        prediction = tool.infer_column(column)
        assert prediction in ALL_FEATURE_TYPES


@given(column_names, arbitrary_cells)
@settings(max_examples=80, deadline=None)
def test_tools_are_deterministic(name, cells):
    column = Column(name, cells)
    for tool in _TOOLS:
        assert tool.infer_column(column) == tool.infer_column(column)


@given(column_names, arbitrary_cells)
@settings(max_examples=80, deadline=None)
def test_profiling_any_column_is_safe_and_finite(name, cells):
    profile = profile_column(Column(name, cells))
    assert profile.stats_vector.shape == (N_STATS,)
    assert np.all(np.isfinite(profile.stats_vector))
    assert len(profile.samples) <= 5
    for sample in profile.samples:
        assert sample is not None


@given(arbitrary_cells)
@settings(max_examples=40, deadline=None)
def test_profile_samples_come_from_the_column(cells):
    column = Column("x", cells)
    profile = profile_column(column, rng=np.random.default_rng(0))
    present = set(column.non_missing())
    assert all(sample in present for sample in profile.samples)
