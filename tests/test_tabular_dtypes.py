"""Tests for syntactic datatype detection."""

import pytest

from repro.tabular.dtypes import (
    SyntacticType,
    column_syntactic_type,
    is_boolean_literal,
    is_float_literal,
    is_integer_literal,
    is_missing,
    looks_like_datetime,
    looks_like_email,
    looks_like_embedded_number,
    looks_like_list,
    looks_like_url,
    syntactic_type,
    try_parse_float,
)


class TestMissing:
    @pytest.mark.parametrize(
        "cell", ["", "NA", "n/a", "NaN", "null", "NONE", "#NULL!", "?", "-"]
    )
    def test_missing_tokens(self, cell):
        assert is_missing(cell)

    @pytest.mark.parametrize("cell", ["0", "no", "nan3", "x", "None4"])
    def test_not_missing(self, cell):
        assert not is_missing(cell)


class TestNumericParsing:
    @pytest.mark.parametrize(
        "cell,expected",
        [("42", 42.0), ("-3.5", -3.5), ("+7", 7.0), ("1e3", 1000.0),
         (".5", 0.5), ("005", 5.0), ("2.", 2.0)],
    )
    def test_parses(self, cell, expected):
        assert try_parse_float(cell) == expected

    @pytest.mark.parametrize(
        "cell", ["USD 45", "5,00,000", "30 Mhz", "18.90%", "abc", "1.2.3", ""]
    )
    def test_rejects(self, cell):
        assert try_parse_float(cell) is None

    def test_rejects_overflowing_pseudo_hex(self):
        # hex ids that look like scientific notation must not become inf
        assert try_parse_float("12345678e9012345") is None

    def test_integer_literal(self):
        assert is_integer_literal("005")
        assert is_integer_literal("-12")
        assert not is_integer_literal("1.5")
        assert not is_integer_literal("12e3")

    def test_float_literal(self):
        assert is_float_literal("1.5")
        assert is_float_literal("12")
        assert not is_float_literal("12f")

    def test_boolean_literal(self):
        assert is_boolean_literal("True")
        assert is_boolean_literal("no")
        assert not is_boolean_literal("0")


class TestDatetime:
    @pytest.mark.parametrize(
        "cell",
        ["2018-07-11", "7/11/2018", "03/04/1797", "March 4, 1797",
         "21:15:03", "2020-01-01T10:00:00", "May-07", "12 Jan 2001",
         "2020-01-01 10:00:00"],
    )
    def test_dates(self, cell):
        assert looks_like_datetime(cell)

    @pytest.mark.parametrize("cell", ["19980112", "hello", "1234", "12.5"])
    def test_non_dates(self, cell):
        assert not looks_like_datetime(cell)

    def test_compact_needs_flag(self):
        assert looks_like_datetime("19980112", allow_compact=True)
        assert not looks_like_datetime("19981512", allow_compact=True)  # month 15


class TestUrlEmailListEmbedded:
    def test_urls(self):
        assert looks_like_url("https://www.example.com")
        assert looks_like_url("http://a.b.io/path?x=1")
        assert not looks_like_url("www.example.com")  # no protocol
        assert not looks_like_url("just text")

    def test_email(self):
        assert looks_like_email("a.b@example.co.uk")
        assert not looks_like_email("a.b@")

    def test_lists(self):
        assert looks_like_list("ru; uk; mx")
        assert looks_like_list("a|b|c")
        assert looks_like_list("Action, Comedy")
        assert not looks_like_list("plain")
        assert not looks_like_list("1,846")  # grouped number, not a list

    def test_embedded_numbers(self):
        assert looks_like_embedded_number("USD 45")
        assert looks_like_embedded_number("30 Mhz")
        assert looks_like_embedded_number("18.90%")
        assert looks_like_embedded_number("5,00,000")
        assert not looks_like_embedded_number("45")
        assert not looks_like_embedded_number("plain text")


class TestColumnType:
    def test_cell_types(self):
        assert syntactic_type("42") is SyntacticType.INTEGER
        assert syntactic_type("4.2") is SyntacticType.FLOAT
        assert syntactic_type("true") is SyntacticType.BOOLEAN
        assert syntactic_type("2020-01-01") is SyntacticType.DATE
        assert syntactic_type("hello") is SyntacticType.STRING
        assert syntactic_type(None) is SyntacticType.MISSING
        assert syntactic_type("NA") is SyntacticType.MISSING

    def test_column_majority(self):
        assert column_syntactic_type(["1", "2", "3"]) is SyntacticType.INTEGER
        assert column_syntactic_type(["1", "2.5", "3"]) is SyntacticType.FLOAT
        assert column_syntactic_type(["a", "1", "2"]) is SyntacticType.STRING
        assert column_syntactic_type([None, None]) is SyntacticType.MISSING
        # ints widen to float, strings don't
        assert (
            column_syntactic_type(["1", "2", None, "3"]) is SyntacticType.INTEGER
        )
