"""Tests for the raw Column container."""

import numpy as np
import pytest

from repro.tabular.column import Column


def test_basic_container():
    col = Column("x", ["a", "b", "c"])
    assert len(col) == 3
    assert list(col) == ["a", "b", "c"]
    assert col[1] == "b"
    assert col.name == "x"


def test_missing_normalization():
    col = Column("x", ["a", "", "NA", None, "NaN", "b", "#NULL!"])
    assert col.n_missing() == 5
    assert col.non_missing() == ["a", "b"]


def test_non_string_cells_coerced():
    col = Column("x", [1, 2.5, None])
    assert col.cells[0] == "1"
    assert col.cells[1] == "2.5"
    assert col.cells[2] is None


def test_distinct_preserves_order():
    col = Column("x", ["b", "a", "b", "c", "a"])
    assert col.distinct() == ["b", "a", "c"]


def test_numeric_values_and_fraction():
    col = Column("x", ["1", "2.5", "abc", None])
    assert col.numeric_values() == [1.0, 2.5]
    assert col.numeric_fraction() == pytest.approx(2 / 3)


def test_numeric_fraction_empty():
    assert Column("x", [None, ""]).numeric_fraction() == 0.0


def test_sample_distinct_small_domain_returns_all():
    col = Column("x", ["a", "b", "a"])
    rng = np.random.default_rng(0)
    assert sorted(col.sample_distinct(5, rng)) == ["a", "b"]


def test_sample_distinct_is_distinct_and_bounded():
    cells = [str(i % 20) for i in range(200)]
    col = Column("x", cells)
    rng = np.random.default_rng(0)
    sample = col.sample_distinct(5, rng)
    assert len(sample) == 5
    assert len(set(sample)) == 5
    assert all(s in col.distinct() for s in sample)


def test_head_distinct():
    col = Column("x", ["c", "a", "c", "b"])
    assert col.head_distinct(2) == ["c", "a"]


def test_equality():
    assert Column("x", ["a"]) == Column("x", ["a"])
    assert Column("x", ["a"]) != Column("y", ["a"])
    assert Column("x", ["a"]) != Column("x", ["b"])
