"""Property tests for downstream featurization invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.downstream.featurize import featurize_split
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import ALL_FEATURE_TYPES, FeatureType

cells = st.lists(
    st.one_of(
        st.none(),
        st.integers(0, 999).map(str),
        st.text(alphabet="abc xyz,;", min_size=1, max_size=12),
    ),
    min_size=4,
    max_size=20,
)


@given(cells, cells, st.sampled_from(list(ALL_FEATURE_TYPES)))
@settings(max_examples=60, deadline=None)
def test_any_assignment_produces_finite_aligned_matrices(
    train_cells, test_cells, feature_type
):
    train = Table([Column("c", train_cells)], name="tr")
    test = Table([Column("c", test_cells)], name="te")
    X_train, X_test = featurize_split(train, test, {"c": feature_type})
    assert X_train.shape[0] == len(train_cells)
    assert X_test.shape[0] == len(test_cells)
    assert X_train.shape[1] == X_test.shape[1] >= 1
    assert np.all(np.isfinite(X_train))
    assert np.all(np.isfinite(X_test))


@given(cells)
@settings(max_examples=30, deadline=None)
def test_ng_always_dropped_regardless_of_content(train_cells):
    train = Table(
        [Column("keep", ["1"] * len(train_cells)), Column("drop", train_cells)],
        name="tr",
    )
    X_train, _ = featurize_split(
        train, train,
        {"keep": FeatureType.NUMERIC, "drop": FeatureType.NOT_GENERALIZABLE},
    )
    assert X_train.shape[1] == 1


def test_featurization_is_deterministic():
    train = Table([Column("c", ["a", "b", "a", "c"])], name="tr")
    for feature_type in ALL_FEATURE_TYPES:
        first = featurize_split(train, train, {"c": feature_type})
        second = featurize_split(train, train, {"c": feature_type})
        assert np.array_equal(first[0], second[0])


@pytest.mark.parametrize(
    "feature_type,min_width",
    [
        (FeatureType.NUMERIC, 1),
        (FeatureType.CATEGORICAL, 2),
        (FeatureType.SENTENCE, 2),
        (FeatureType.CONTEXT_SPECIFIC, 2),
    ],
)
def test_expected_widths(feature_type, min_width):
    train = Table(
        [Column("c", ["1 one", "2 two", "3 three", "4 four"])], name="tr"
    )
    X_train, _ = featurize_split(train, train, {"c": feature_type})
    assert X_train.shape[1] >= min_width
