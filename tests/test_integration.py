"""End-to-end integration tests exercising the public API as a user would."""

import numpy as np

from repro.core import RandomForestModel, TypeInferencePipeline
from repro.datagen import generate_corpus
from repro.ml import accuracy_score, train_test_split
from repro.tabular import read_csv_text
from repro.types import FeatureType


def _churn_csv(n_rows: int = 80) -> str:
    """The paper's Figure 2 churn table, scaled to a realistic row count."""
    rng = np.random.default_rng(7)
    zips = ["92092", "78712", "10001", "60601", "94105"]
    lines = ["CustID,Gender,Salary,ZipCode,Income,HireDate,Churn"]
    for i in range(n_rows):
        lines.append(
            ",".join(
                [
                    str(1500 + 7 * i),
                    "F" if rng.random() < 0.5 else "M",
                    str(int(rng.integers(1200, 9000))),
                    zips[int(rng.integers(len(zips)))],
                    f"USD {int(rng.integers(12000, 60000))}",
                    f"{int(rng.integers(1, 13)):02d}/{int(rng.integers(1, 29)):02d}/"
                    f"{int(rng.integers(1980, 2020))}",
                    "Yes" if rng.random() < 0.4 else "No",
                ]
            )
        )
    return "\n".join(lines) + "\n"


CHURN_CSV = _churn_csv()


def test_figure1_churn_workflow():
    """Reproduce the paper's running example (Figure 2): the churn table."""
    corpus = generate_corpus(n_examples=600, seed=21)
    labels = [label.value for label in corpus.dataset.labels]
    index = np.arange(len(corpus.dataset))
    train_idx, _test_idx = train_test_split(
        index, test_size=0.2, random_state=0, stratify=labels
    )
    model = RandomForestModel(n_estimators=25, random_state=0)
    model.fit(corpus.dataset.subset(train_idx))
    pipeline = TypeInferencePipeline(model)

    predictions = {
        p.column: p.feature_type for p in pipeline.predict_csv_text(CHURN_CSV)
    }
    # the semantic-gap cases the paper's intro hinges on:
    assert predictions["Salary"] is FeatureType.NUMERIC
    assert predictions["ZipCode"] is FeatureType.CATEGORICAL
    assert predictions["Gender"] is FeatureType.CATEGORICAL
    assert predictions["HireDate"] is FeatureType.DATETIME
    assert predictions["Income"] is FeatureType.EMBEDDED_NUMBER
    assert predictions["CustID"] in (
        FeatureType.NOT_GENERALIZABLE,
        FeatureType.NUMERIC,  # acceptable: small table makes keys ambiguous
    )


def test_ml_beats_syntax_tools_end_to_end():
    """The headline claim on a fresh corpus the model never saw."""
    from repro.tools import TFDVTool

    train_corpus = generate_corpus(n_examples=700, seed=31)
    eval_corpus = generate_corpus(n_examples=250, seed=32)

    model = RandomForestModel(n_estimators=25, random_state=0)
    model.fit(train_corpus.dataset)
    model_preds = model.predict(eval_corpus.dataset.profiles)

    tool = TFDVTool()
    columns = {
        (t.name, c.name): c for t in eval_corpus.files for c in t
    }
    tool_preds = [
        tool.infer_column(columns[(p.source_file, p.name)])
        for p in eval_corpus.dataset.profiles
    ]
    truth = [t.value for t in eval_corpus.dataset.labels]
    model_acc = accuracy_score(truth, [p.value for p in model_preds])
    tool_acc = accuracy_score(truth, [p.value for p in tool_preds])
    assert model_acc > tool_acc + 0.15  # the paper's "average 14% lift" shape


def test_read_csv_profile_predict_confidences():
    table = read_csv_text(CHURN_CSV, name="churn")
    corpus = generate_corpus(n_examples=400, seed=51)
    model = RandomForestModel(n_estimators=15).fit(corpus.dataset)
    pipeline = TypeInferencePipeline(model)
    predictions = pipeline.predict_table(table)
    assert len(predictions) == 7
    for prediction in predictions:
        assert 0.0 < prediction.confidence <= 1.0
