"""Tests for the text vectorizers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.text import (
    CountVectorizer,
    HashingVectorizer,
    TfidfVectorizer,
    _stable_hash,
    char_ngrams,
    tokenize_words,
    word_ngrams,
)


class TestAnalyzers:
    def test_char_bigrams_with_boundaries(self):
        assert char_ngrams("ab", 2) == ["^a", "ab", "b$"]

    def test_char_ngrams_short_text(self):
        assert char_ngrams("", 3) == ["^$"]

    def test_tokenize_strips_punctuation(self):
        assert tokenize_words("Hello, world! (x)") == ["hello", "world", "x"]

    def test_word_bigrams(self):
        assert word_ngrams("a b c", 2) == ["a b", "b c"]
        assert word_ngrams("a", 2) == ["a"]
        assert word_ngrams("", 2) == []


class TestCountVectorizer:
    def test_counts(self):
        vec = CountVectorizer(analyzer="word", ngram=1, max_features=10)
        X = vec.fit_transform(["a a b", "b c"])
        assert X.shape == (2, 3)
        a_col = vec.vocabulary_["a"]
        assert X[0, a_col] == 2.0

    def test_binary_mode(self):
        vec = CountVectorizer(analyzer="word", ngram=1, binary=True)
        X = vec.fit_transform(["a a a"])
        assert X.max() == 1.0

    def test_max_features_cap(self):
        vec = CountVectorizer(analyzer="char", ngram=2, max_features=3)
        vec.fit(["abcdefgh", "ijklmnop"])
        assert len(vec.vocabulary_) == 3

    def test_min_df_filters_rare(self):
        vec = CountVectorizer(analyzer="word", ngram=1, min_df=2)
        vec.fit(["a b", "a c"])
        assert set(vec.vocabulary_) == {"a"}

    def test_unknown_analyzer(self):
        with pytest.raises(ValueError):
            CountVectorizer(analyzer="sentence")


class TestTfidf:
    def test_l2_normalized_rows(self):
        vec = TfidfVectorizer()
        X = vec.fit_transform(["a b c", "a d e", "f"])
        norms = np.linalg.norm(X, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_rare_terms_weighted_higher(self):
        vec = TfidfVectorizer()
        vec.fit(["common rare", "common x", "common y"])
        common = vec.idf_[vec.vocabulary_["common"]]
        rare = vec.idf_[vec.vocabulary_["rare"]]
        assert rare > common


class TestHashing:
    def test_stateless_and_deterministic(self):
        vec = HashingVectorizer(n_features=32)
        a = vec.transform(["hello world"])
        b = vec.transform(["hello world"])
        assert np.array_equal(a, b)

    def test_shape(self):
        vec = HashingVectorizer(n_features=64)
        assert vec.transform(["a", "b", "c"]).shape == (3, 64)

    def test_different_texts_differ(self):
        vec = HashingVectorizer(n_features=256)
        a = vec.transform(["salary"])
        b = vec.transform(["zip_code"])
        assert not np.array_equal(a, b)

    @given(st.text(max_size=30))
    def test_stable_hash_is_64bit(self, text):
        value = _stable_hash(text)
        assert 0 <= value < 2**64

    def test_stable_hash_known_value(self):
        # FNV-1a must not drift across releases (hashed features depend on it)
        assert _stable_hash("") == 0xCBF29CE484222325
