"""Tests for scalers and encoders."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.base import NotFittedError
from repro.ml.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 20), st.integers(1, 5)),
    elements=st.floats(-100, 100),
)


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_passthrough(self):
        X = np.array([[1.0, 5.0], [1.0, 7.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    @given(matrices)
    def test_inverse_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X,
                           atol=1e-6)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_dimension_mismatch_raises(self):
        scaler = StandardScaler().fit(np.zeros((3, 2)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(np.zeros((3, 5)))


class TestLabelEncoder:
    def test_roundtrip(self):
        enc = LabelEncoder().fit(["b", "a", "b", "c"])
        codes = enc.transform(["a", "b", "c"])
        assert codes.tolist() == [0, 1, 2]
        assert enc.inverse_transform(codes) == ["a", "b", "c"]

    def test_unseen_raises(self):
        enc = LabelEncoder().fit(["a"])
        with pytest.raises(ValueError, match="unseen"):
            enc.transform(["z"])

    @given(st.lists(st.sampled_from("abcde"), min_size=1, max_size=30))
    def test_roundtrip_property(self, labels):
        enc = LabelEncoder().fit(labels)
        assert enc.inverse_transform(enc.transform(labels)) == labels


class TestOneHotEncoder:
    def test_basic(self):
        enc = OneHotEncoder().fit(["a", "b", "a"])
        X = enc.transform(["a", "b", "a"])
        assert X.shape == (3, 2)
        assert X.sum(axis=1).tolist() == [1.0, 1.0, 1.0]

    def test_unknown_ignored(self):
        enc = OneHotEncoder(handle_unknown="ignore").fit(["a"])
        assert enc.transform(["z"]).sum() == 0.0

    def test_unknown_bucketed(self):
        enc = OneHotEncoder(handle_unknown="bucket").fit(["a"])
        X = enc.transform(["z", "a"])
        assert X.shape == (2, 2)
        assert X[0, 1] == 1.0 and X[1, 0] == 1.0

    def test_max_categories_keeps_most_frequent(self):
        enc = OneHotEncoder(max_categories=1).fit(["a", "a", "b"])
        assert enc.categories_ == ["a"]

    def test_none_treated_as_empty(self):
        enc = OneHotEncoder().fit(["a", None])
        X = enc.transform([None])
        assert X.sum() == 1.0

    def test_bad_handle_unknown(self):
        with pytest.raises(ValueError):
            OneHotEncoder(handle_unknown="boom")

    @given(st.lists(st.sampled_from("abcdef"), min_size=1, max_size=40))
    def test_rows_are_one_hot(self, values):
        enc = OneHotEncoder().fit(values)
        X = enc.transform(values)
        assert np.all(X.sum(axis=1) == 1.0)
        assert set(np.unique(X)) <= {0.0, 1.0}
