"""Tests for base featurization and the labeled dataset container."""

import numpy as np
import pytest

from repro.core.featurize import (
    LabeledDataset,
    N_SAMPLE_VALUES,
    profile_column,
    profile_table,
)
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import FeatureType


def test_profile_deterministic_without_rng():
    col = Column("age", [str(i) for i in range(50)])
    a = profile_column(col)
    b = profile_column(col)
    assert a.samples == b.samples == [str(i) for i in range(N_SAMPLE_VALUES)]


def test_profile_random_sampling_distinct():
    col = Column("age", [str(i % 30) for i in range(300)])
    profile = profile_column(col, rng=np.random.default_rng(0))
    assert len(profile.samples) == N_SAMPLE_VALUES
    assert len(set(profile.samples)) == N_SAMPLE_VALUES


def test_profile_carries_metadata():
    col = Column("x", ["1"])
    profile = profile_column(col, source_file="f.csv", label=FeatureType.NUMERIC)
    assert profile.source_file == "f.csv"
    assert profile.label is FeatureType.NUMERIC
    assert profile.stats_vector.shape == (25,)


def test_profile_sample_out_of_range_is_empty():
    profile = profile_column(Column("x", ["only"]))
    assert profile.sample(0) == "only"
    assert profile.sample(3) == ""


def test_profile_table():
    table = Table([Column("a", ["1"]), Column("b", ["x"])], name="t")
    profiles = profile_table(table)
    assert [p.name for p in profiles] == ["a", "b"]
    assert all(p.source_file == "t" for p in profiles)


class TestLabeledDataset:
    def _dataset(self) -> LabeledDataset:
        profiles = [
            profile_column(Column(f"c{i}", ["1", "2"]), source_file=f"f{i % 2}",
                           label=FeatureType.NUMERIC)
            for i in range(6)
        ]
        return LabeledDataset(profiles)

    def test_container(self):
        ds = self._dataset()
        assert len(ds) == 6
        assert ds[0].name == "c0"
        assert len(ds[1:3]) == 2
        assert ds.names == [f"c{i}" for i in range(6)]

    def test_labels_and_groups(self):
        ds = self._dataset()
        assert ds.labels == [FeatureType.NUMERIC] * 6
        assert ds.groups == ["f0", "f1"] * 3

    def test_unlabeled_raises(self):
        ds = self._dataset()
        ds.profiles[2].label = None
        with pytest.raises(ValueError, match="unlabeled"):
            ds.labels

    def test_matrices(self):
        ds = self._dataset()
        assert ds.stats_matrix().shape == (6, 25)
        assert ds.sample_column(0) == ["1"] * 6
        assert ds.sample_column(4) == [""] * 6

    def test_subset(self):
        ds = self._dataset()
        sub = ds.subset([0, 2])
        assert sub.names == ["c0", "c2"]

    def test_class_distribution(self):
        ds = self._dataset()
        dist = ds.class_distribution()
        assert dist[FeatureType.NUMERIC] == 1.0
