"""Tests + property tests for the 25 descriptive statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import (
    DATETIME_FEATURE_INDEX,
    LIST_FEATURE_INDEX,
    N_STATS,
    STAT_NAMES,
    URL_FEATURE_INDEX,
    compress_stats,
    compute_stats,
)
from repro.tabular.column import Column

cells_strategy = st.lists(
    st.one_of(
        st.none(),
        st.integers(-1000, 1000).map(str),
        st.floats(-100, 100, allow_nan=False).map(lambda v: f"{v:.3f}"),
        st.text(alphabet="abc xyz;,", max_size=15),
    ),
    min_size=1,
    max_size=40,
)


def test_there_are_25_stats():
    assert N_STATS == 25
    assert len(set(STAT_NAMES)) == 25


class TestComputeStats:
    def test_counts(self):
        col = Column("x", ["1", "2", "2", None, "NA"])
        stats = compute_stats(col)
        assert stats["total_values"] == 5
        assert stats["num_nans"] == 2
        assert stats["pct_nans"] == pytest.approx(0.4)
        assert stats["num_distinct"] == 2
        assert stats["pct_distinct"] == pytest.approx(0.4)

    def test_numeric_moments(self):
        col = Column("x", ["1", "2", "3"])
        stats = compute_stats(col)
        assert stats["mean_value"] == pytest.approx(2.0)
        assert stats["min_value"] == 1.0
        assert stats["max_value"] == 3.0
        assert stats["numeric_fraction"] == 1.0

    def test_non_numeric_moments_zero(self):
        stats = compute_stats(Column("x", ["a", "b"]))
        assert stats["mean_value"] == 0.0
        assert stats["numeric_fraction"] == 0.0

    def test_word_and_char_counts(self):
        stats = compute_stats(Column("x", ["two words", "three little words"]))
        assert stats["mean_word_count"] == pytest.approx(2.5)
        assert stats["mean_whitespace_count"] == pytest.approx(1.5)

    def test_stopword_count(self):
        stats = compute_stats(Column("x", ["the cat is here"]))
        assert stats["mean_stopword_count"] == pytest.approx(2.0)

    def test_boolean_probes(self):
        url = compute_stats(Column("x", ["https://www.a.com"] * 3))
        assert url["sample_has_url"] == 1.0
        lst = compute_stats(Column("x", ["a; b; c"] * 3))
        assert lst["sample_has_list"] == 1.0
        date = compute_stats(Column("x", ["2020-01-02"] * 3))
        assert date["sample_has_date"] == 1.0
        plain = compute_stats(Column("x", ["word"] * 3))
        for probe in ("sample_has_url", "sample_has_list", "sample_has_date",
                      "sample_has_email"):
            assert plain[probe] == 0.0

    def test_explicit_samples_drive_probes(self):
        col = Column("x", ["https://www.a.com", "plain"])
        stats = compute_stats(col, samples=["plain"])
        assert stats["sample_has_url"] == 0.0

    def test_all_missing_column(self):
        stats = compute_stats(Column("x", [None, None]))
        assert stats["pct_nans"] == 1.0
        assert stats["num_distinct"] == 0

    def test_huge_values_stay_finite(self):
        col = Column("x", ["8.8e17", "1e300", "5"])
        stats = compute_stats(col)
        assert np.all(np.isfinite(stats.values))

    @given(cells_strategy)
    @settings(max_examples=60, deadline=None)
    def test_vector_always_finite_and_bounded(self, cells):
        stats = compute_stats(Column("x", cells))
        assert stats.values.shape == (N_STATS,)
        assert np.all(np.isfinite(stats.values))
        assert 0.0 <= stats["pct_nans"] <= 1.0
        assert 0.0 <= stats["pct_distinct"] <= 1.0
        assert 0.0 <= stats["numeric_fraction"] <= 1.0

    def test_as_dict(self):
        stats = compute_stats(Column("x", ["1"]))
        d = stats.as_dict()
        assert set(d) == set(STAT_NAMES)


class TestCompressStats:
    def test_bounded_columns_untouched(self):
        matrix = np.zeros((2, N_STATS))
        matrix[:, STAT_NAMES.index("pct_nans")] = 0.5
        out = compress_stats(matrix)
        assert out[0, STAT_NAMES.index("pct_nans")] == 0.5

    def test_log_compression_monotone_and_signed(self):
        matrix = np.zeros((3, N_STATS))
        idx = STAT_NAMES.index("mean_value")
        matrix[:, idx] = [-100.0, 0.0, 1e12]
        out = compress_stats(matrix)
        assert out[0, idx] < out[1, idx] < out[2, idx]
        assert out[0, idx] == pytest.approx(-np.log1p(100.0))

    def test_ablation_indices_point_at_probes(self):
        assert STAT_NAMES[URL_FEATURE_INDEX] == "sample_has_url"
        assert STAT_NAMES[LIST_FEATURE_INDEX] == "sample_has_list"
        assert STAT_NAMES[DATETIME_FEATURE_INDEX] == "sample_has_date"
