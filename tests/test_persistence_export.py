"""Tests for model persistence and corpus export/load."""

import pytest

from repro.core.models import RandomForestModel
from repro.core.persistence import (
    ModelFormatError,
    ModelPersistenceError,
    fingerprint_model,
    load_model,
    model_fingerprint,
    save_model,
)
from repro.datagen.corpus import generate_corpus
from repro.datagen.export import export_corpus, load_corpus


@pytest.fixture(scope="module")
def tiny_setup():
    corpus = generate_corpus(n_examples=150, seed=3)
    model = RandomForestModel(n_estimators=8, random_state=0)
    model.fit(corpus.dataset)
    return corpus, model


class TestPersistence:
    def test_roundtrip_predictions_identical(self, tiny_setup, tmp_path):
        corpus, model = tiny_setup
        path = tmp_path / "rf.model"
        save_model(model, path)
        loaded = load_model(path)
        profiles = corpus.dataset.profiles[:20]
        assert loaded.predict(profiles) == model.predict(profiles)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.model"
        path.write_bytes(b"not a model at all")
        with pytest.raises(ModelPersistenceError, match="not a repro model"):
            load_model(path)

    def test_wrong_payload_rejected(self, tmp_path):
        import pickle

        from repro.core.persistence import _MAGIC

        path = tmp_path / "weird.model"
        path.write_bytes(
            _MAGIC + pickle.dumps({"format_version": 1, "model": "nope"})
        )
        with pytest.raises(ModelPersistenceError, match="does not contain"):
            load_model(path)

    def test_wrong_version_rejected(self, tmp_path, tiny_setup):
        import pickle

        from repro.core.persistence import _MAGIC

        _corpus, model = tiny_setup
        path = tmp_path / "old.model"
        path.write_bytes(
            _MAGIC + pickle.dumps({"format_version": 99, "model": model})
        )
        with pytest.raises(ModelPersistenceError, match="version"):
            load_model(path)

    def test_format_errors_are_typed(self, tmp_path, tiny_setup):
        import pickle

        from repro.core.persistence import _MAGIC

        _corpus, model = tiny_setup
        versionless = tmp_path / "versionless.model"
        versionless.write_bytes(_MAGIC + pickle.dumps({"model": model}))
        with pytest.raises(ModelFormatError, match="format_version"):
            load_model(versionless)

        wrong_version = tmp_path / "future.model"
        wrong_version.write_bytes(
            _MAGIC + pickle.dumps({"format_version": 99, "model": model})
        )
        with pytest.raises(ModelFormatError, match="version"):
            load_model(wrong_version)
        # Typed subclass: existing except ModelPersistenceError still works.
        assert issubclass(ModelFormatError, ModelPersistenceError)

    def test_model_fingerprint(self, tiny_setup, tmp_path):
        _corpus, model = tiny_setup
        path = tmp_path / "fp.model"
        save_model(model, path)
        on_disk = model_fingerprint(path)
        assert len(on_disk) == 64 and int(on_disk, 16) >= 0
        # In-memory fingerprint matches what the saved artifact reports.
        assert fingerprint_model(model) == on_disk
        # Same bytes → same fingerprint; different artifact → different.
        other = tmp_path / "fp2.model"
        save_model(model, other)
        assert model_fingerprint(other) == on_disk
        with pytest.raises(ModelFormatError, match="not a repro model"):
            junk = tmp_path / "junk.bin"
            junk.write_bytes(b"nope")
            model_fingerprint(junk)


class TestCorpusExport:
    def test_roundtrip(self, tiny_setup, tmp_path):
        corpus, _model = tiny_setup
        manifest = export_corpus(corpus, tmp_path)
        assert manifest.exists()
        loaded = load_corpus(tmp_path)
        assert loaded.n_files == corpus.n_files
        assert loaded.n_examples == corpus.n_examples
        assert loaded.truth == corpus.truth
        # labels survive per profile
        original = {
            (p.source_file, p.name): p.label for p in corpus.dataset.profiles
        }
        for profile in loaded.dataset.profiles:
            assert original[(profile.source_file, profile.name)] is profile.label

    def test_loaded_corpus_trains_a_model(self, tiny_setup, tmp_path):
        corpus, _model = tiny_setup
        export_corpus(corpus, tmp_path)
        loaded = load_corpus(tmp_path)
        model = RandomForestModel(n_estimators=5).fit(loaded.dataset)
        assert model.score(loaded.dataset) > 0.8

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="labels.csv"):
            load_corpus(tmp_path)
