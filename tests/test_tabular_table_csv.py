"""Tests for Table and CSV IO."""

import pytest

from repro.tabular.column import Column
from repro.tabular.csv_io import (
    read_csv,
    read_csv_text,
    sniff_delimiter,
    to_csv_text,
    write_csv,
)
from repro.tabular.table import Table


@pytest.fixture()
def table() -> Table:
    return Table(
        [Column("a", ["1", "2"]), Column("b", ["x", None])], name="t"
    )


class TestTable:
    def test_shape(self, table):
        assert len(table) == 2
        assert table.n_columns == 2
        assert table.column_names == ["a", "b"]

    def test_getitem_and_contains(self, table):
        assert table["a"].cells[0] == "1"
        assert "b" in table
        with pytest.raises(KeyError, match="no column"):
            table["missing"]

    def test_rows(self, table):
        assert list(table.rows()) == [["1", "x"], ["2", None]]

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="rows"):
            Table([Column("a", ["1"]), Column("b", ["1", "2"])])

    def test_duplicate_names_raise(self):
        with pytest.raises(ValueError, match="duplicate"):
            Table([Column("a", ["1"]), Column("a", ["2"])])

    def test_select_drop(self, table):
        assert table.select(["b"]).column_names == ["b"]
        assert table.drop(["b"]).column_names == ["a"]
        with pytest.raises(KeyError):
            table.drop(["zz"])

    def test_with_column_appends_and_replaces(self, table):
        grown = table.with_column(Column("c", ["9", "8"]))
        assert grown.column_names == ["a", "b", "c"]
        replaced = table.with_column(Column("a", ["7", "7"]))
        assert replaced["a"].cells == ["7", "7"]
        assert replaced.n_columns == 2

    def test_from_dict(self):
        t = Table.from_dict({"x": ["1"], "y": ["a"]})
        assert t.column_names == ["x", "y"]

    def test_from_rows_pads_ragged(self):
        t = Table.from_rows(["a", "b"], [["1"], ["1", "2", "3"]])
        assert list(t.rows()) == [["1", None], ["1", "2"]]


class TestCsv:
    def test_roundtrip_text(self, table):
        text = to_csv_text(table)
        back = read_csv_text(text, name="t")
        assert back.column_names == table.column_names
        assert list(back.rows()) == list(table.rows())

    def test_roundtrip_file(self, table, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(table, path)
        back = read_csv(path)
        assert back.name == "t"
        assert list(back.rows()) == list(table.rows())

    def test_quoted_cells_with_commas(self):
        text = 'name,notes\nalice,"hello, world"\n'
        t = read_csv_text(text)
        assert t["notes"].cells[0] == "hello, world"

    def test_empty_csv_raises(self):
        with pytest.raises(ValueError, match="empty"):
            read_csv_text("")

    def test_duplicate_headers_deduped(self):
        t = read_csv_text("a,a,a\n1,2,3\n")
        assert t.column_names == ["a", "a.1", "a.2"]

    def test_sniff_semicolon(self):
        assert sniff_delimiter("a;b;c\n1;2;3\n") == ";"
        assert sniff_delimiter("a,b\n1,2\n") == ","
        assert sniff_delimiter("a\tb\n1\t2\n") == "\t"

    def test_missing_cells_roundtrip_as_none(self, table):
        back = read_csv_text(to_csv_text(table))
        assert back["b"].cells[1] is None
