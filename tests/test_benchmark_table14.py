"""Tests for the Table 14 Sherlock-complementarity experiment."""

from repro.benchmark.table14 import (
    TABLE14_TYPES,
    render_table14,
    run_table14,
)


def test_table14_rows_and_invariants(small_context):
    rows = run_table14(small_context)
    assert [r.semantic_type for r in rows] == list(TABLE14_TYPES)
    for row in rows:
        assert row.n_examples >= 12
        assert 0 <= row.sherlock_standalone_correct <= row.n_examples
        assert 0 <= row.ourrf_categorical <= row.n_examples
        # gating can only remove examples, never add correct ones
        assert (
            row.sherlock_given_categorical_correct
            <= row.sherlock_standalone_correct
        )
        assert 0.0 <= row.gated_recall <= row.standalone_recall + 1e-9
    assert "gated recall" in render_table14(rows)
