"""Tests for the rule/syntax-based tool simulators.

Each tool must reproduce the failure modes the paper documents — most
importantly the semantic gap: integer-coded categoricals come out Numeric
from syntax-reading tools.
"""

import pytest

from repro.tabular.column import Column
from repro.tools import (
    AutoGluonTool,
    PandasTool,
    RuleBaselineTool,
    TFDVTool,
    TransmogrifAITool,
)
from repro.types import FeatureType


def col(name, cells):
    return Column(name, cells)


ZIPCODES = col("ZipCode", ["92092", "78712", "10001", "60601", "94105"] * 10)
SALARIES = col("Salary", [f"{1500.5 + i * 13.7:.2f}" for i in range(50)])
DATES_ISO = col("HireDate", ["2020-01-15", "2019-07-04", "2021-11-30"] * 10)
DATES_LONG = col("End", ["March 4, 1797", "July 9, 1850", "May 1, 1801"] * 10)
SENTENCES = col(
    "Review",
    [
        f"this product number {i} was really great and i liked it a lot"
        for i in range(20)
    ],
)
SHORT_CATS = col("Gender", ["M", "F"] * 25)
MULTIWORD_CATS = col("Tenure", ["Own house, rent lot and more words here"] * 30)
CONSTANT = col("Flag", ["1"] * 40)
ALL_NAN = col("Empty", [None] * 40)
PRIMARY_KEY = col("CustID", [str(1500 + i) for i in range(60)])
EMBEDDED = col("Income", [f"USD {1000 + i}" for i in range(40)])


class TestPandasTool:
    tool = PandasTool()

    def test_integers_are_numeric_even_zipcodes(self):
        assert self.tool.infer_column(ZIPCODES) is FeatureType.NUMERIC

    def test_floats_numeric(self):
        assert self.tool.infer_column(SALARIES) is FeatureType.NUMERIC

    def test_datetime_probe_is_broad(self):
        assert self.tool.infer_column(DATES_ISO) is FeatureType.DATETIME
        assert self.tool.infer_column(DATES_LONG) is FeatureType.DATETIME

    def test_strings_become_object(self):
        assert self.tool.infer_column(SHORT_CATS) is FeatureType.CONTEXT_SPECIFIC
        assert self.tool.infer_column(EMBEDDED) is FeatureType.CONTEXT_SPECIFIC

    def test_coverage_excludes_object(self):
        assert self.tool.covers_column(ZIPCODES)
        assert self.tool.covers_column(DATES_ISO)
        assert not self.tool.covers_column(SHORT_CATS)


class TestTFDVTool:
    tool = TFDVTool()

    def test_integer_categoricals_wrongly_numeric(self):
        assert self.tool.infer_column(ZIPCODES) is FeatureType.NUMERIC

    def test_primary_keys_wrongly_numeric(self):
        assert self.tool.infer_column(PRIMARY_KEY) is FeatureType.NUMERIC

    def test_string_categoricals_correct(self):
        assert self.tool.infer_column(SHORT_CATS) is FeatureType.CATEGORICAL

    def test_narrow_date_recall(self):
        assert self.tool.infer_column(DATES_ISO) is FeatureType.DATETIME
        # misses the long format -> low Datetime recall (paper Table 1)
        assert self.tool.infer_column(DATES_LONG) is not FeatureType.DATETIME

    def test_word_count_text_heuristic_low_precision(self):
        assert self.tool.infer_column(SENTENCES) is FeatureType.SENTENCE
        # multi-word categoricals satisfy the same rule -> precision loss
        assert self.tool.infer_column(MULTIWORD_CATS) is FeatureType.SENTENCE

    def test_empty_column_uncovered(self):
        assert not self.tool.covers_column(ALL_NAN)


class TestTransmogrifAITool:
    tool = TransmogrifAITool()

    def test_numeric_primitives(self):
        assert self.tool.infer_column(ZIPCODES) is FeatureType.NUMERIC

    def test_strict_timestamp_only(self):
        assert self.tool.infer_column(DATES_ISO) is FeatureType.DATETIME
        assert self.tool.infer_column(DATES_LONG) is not FeatureType.DATETIME

    def test_strings_are_text(self):
        assert (
            self.tool.infer_column(SHORT_CATS) is FeatureType.CONTEXT_SPECIFIC
        )

    def test_coverage(self):
        assert self.tool.covers_column(SALARIES)
        assert not self.tool.covers_column(SENTENCES)


class TestAutoGluonTool:
    tool = AutoGluonTool()

    def test_low_cardinality_ints_are_categorical(self):
        codes = col("level", ["1", "2", "3"] * 20)
        assert self.tool.infer_column(codes) is FeatureType.CATEGORICAL

    def test_high_cardinality_ints_numeric(self):
        assert self.tool.infer_column(PRIMARY_KEY) is FeatureType.NUMERIC

    def test_discard_bucket(self):
        assert self.tool.infer_column(CONSTANT) is FeatureType.NOT_GENERALIZABLE
        assert self.tool.infer_column(ALL_NAN) is FeatureType.NOT_GENERALIZABLE

    def test_dates_broad_but_not_compact(self):
        assert self.tool.infer_column(DATES_ISO) is FeatureType.DATETIME
        assert self.tool.infer_column(DATES_LONG) is FeatureType.DATETIME
        compact = col("BirthDate", ["19980112", "20010930"] * 10)
        assert self.tool.infer_column(compact) is not FeatureType.DATETIME

    def test_text_heuristic(self):
        assert self.tool.infer_column(SENTENCES) is FeatureType.SENTENCE


class TestRuleBaseline:
    tool = RuleBaselineTool()

    def test_covers_all_nine_classes(self):
        cases = {
            FeatureType.NUMERIC: SALARIES,
            FeatureType.DATETIME: DATES_ISO,
            FeatureType.SENTENCE: SENTENCES,
            FeatureType.CATEGORICAL: SHORT_CATS,
            FeatureType.NOT_GENERALIZABLE: CONSTANT,
            FeatureType.URL: col(
                "u", [f"https://www.a.com/x{i}" for i in range(20)]
            ),
            FeatureType.LIST: col("tags", ["a; b; c", "d; e; f"] * 10),
            FeatureType.EMBEDDED_NUMBER: EMBEDDED,
        }
        for expected, column in cases.items():
            assert self.tool.infer_column(column) is expected

    def test_semantic_gap_failure(self):
        # integer-coded categories land in the Numeric rule (paper: CA recall ~0.46)
        assert self.tool.infer_column(ZIPCODES) is FeatureType.NUMERIC

    def test_all_nan_is_ng(self):
        assert self.tool.infer_column(ALL_NAN) is FeatureType.NOT_GENERALIZABLE

    def test_unique_integer_keys_are_ng(self):
        assert self.tool.infer_column(PRIMARY_KEY) is FeatureType.NOT_GENERALIZABLE

    def test_large_string_domain_is_context_specific(self):
        unique_strings = col("name", [f"entity num {i} xyz" for i in range(60)])
        prediction = self.tool.infer_column(unique_strings)
        assert prediction in (
            FeatureType.CONTEXT_SPECIFIC,
            FeatureType.SENTENCE,
        )

    def test_infer_table(self):
        from repro.tabular.table import Table

        table = Table(
            [
                col("Salary", [f"{1500.5 + i:.2f}" for i in range(30)]),
                col("HireDate", ["2020-01-15", "2019-07-04", "2021-11-30"] * 10),
            ],
            name="t",
        )
        out = self.tool.infer_table(table)
        assert out == {
            "Salary": FeatureType.NUMERIC,
            "HireDate": FeatureType.DATETIME,
        }
