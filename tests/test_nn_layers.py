"""Gradient checks and behavioural tests for the numpy NN layers."""

import numpy as np
import pytest

from repro.nn.encoding import PAD_CODE, UNK_CODE, VOCAB_SIZE, encode_batch, encode_text
from repro.nn.layers import (
    Conv1D,
    Dense,
    Dropout,
    Embedding,
    GlobalMaxPool1D,
    ReLU,
)
from repro.nn.losses import softmax, softmax_cross_entropy
from repro.nn.optim import SGD, Adam


def numeric_gradient(loss_fn, param, eps=1e-5, max_checks=8, skip_rows=()):
    """Central finite differences on a handful of entries."""
    checks = []
    it = np.nditer(param, flags=["multi_index"])
    while not it.finished and len(checks) < max_checks:
        idx = it.multi_index
        if idx[0] in skip_rows:
            it.iternext()
            continue
        old = param[idx]
        param[idx] = old + eps
        up = loss_fn()
        param[idx] = old - eps
        down = loss_fn()
        param[idx] = old
        checks.append((idx, (up - down) / (2 * eps)))
        it.iternext()
    return checks


@pytest.fixture()
def tiny_net(rng):
    emb = Embedding(10, 4, rng)
    conv = Conv1D(4, 3, 2, rng)
    relu = ReLU()
    pool = GlobalMaxPool1D()
    dense = Dense(3, 2, rng)
    x = rng.integers(1, 10, size=(5, 6))
    y = np.array([0, 1, 0, 1, 1])

    def forward():
        h = emb.forward(x, True)
        h = conv.forward(h, True)
        h = relu.forward(h, True)
        h = pool.forward(h, True)
        return dense.forward(h, True)

    return emb, conv, relu, pool, dense, x, y, forward


class TestGradients:
    def test_backprop_matches_finite_differences(self, tiny_net):
        emb, conv, relu, pool, dense, _x, y, forward = tiny_net

        def loss_only():
            return softmax_cross_entropy(forward(), y)[0]

        _loss, grad = softmax_cross_entropy(forward(), y)
        g = dense.backward(grad)
        g = pool.backward(g)
        g = relu.backward(g)
        g = conv.backward(g)
        emb.backward(g)

        for layer, skip in ((dense, ()), (conv, ()), (emb, (0,))):
            for param, analytic in zip(layer.params, layer.grads):
                for idx, numeric in numeric_gradient(
                    loss_only, param, skip_rows=skip
                ):
                    assert abs(numeric - analytic[idx]) < 1e-5


class TestLayers:
    def test_embedding_pad_row_frozen(self, rng):
        emb = Embedding(5, 3, rng)
        assert np.all(emb.weight[PAD_CODE] == 0.0)
        x = np.zeros((2, 4), dtype=np.int64)
        emb.forward(x, True)
        emb.backward(np.ones((2, 4, 3)))
        assert np.all(emb.grads[0][PAD_CODE] == 0.0)

    def test_conv_output_shape(self, rng):
        conv = Conv1D(4, 7, 3, rng)
        out = conv.forward(rng.normal(size=(2, 10, 4)))
        assert out.shape == (2, 8, 7)

    def test_conv_pads_short_sequences(self, rng):
        conv = Conv1D(4, 7, 5, rng)
        out = conv.forward(rng.normal(size=(2, 3, 4)))
        assert out.shape == (2, 1, 7)

    def test_relu(self):
        relu = ReLU()
        out = relu.forward(np.array([[-1.0, 2.0]]))
        assert out.tolist() == [[0.0, 2.0]]
        grad = relu.backward(np.array([[5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0]]

    def test_global_max_pool(self):
        pool = GlobalMaxPool1D()
        x = np.array([[[1.0, 9.0], [5.0, 2.0]]])
        assert pool.forward(x).tolist() == [[5.0, 9.0]]
        grad = pool.backward(np.array([[1.0, 1.0]]))
        assert grad[0, 1, 0] == 1.0 and grad[0, 0, 1] == 1.0

    def test_dropout_inference_identity(self, rng):
        drop = Dropout(0.5, rng)
        x = rng.normal(size=(4, 4))
        assert np.array_equal(drop.forward(x, training=False), x)

    def test_dropout_training_scales(self, rng):
        drop = Dropout(0.5, rng)
        x = np.ones((1000, 1))
        out = drop.forward(x, training=True)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout
        assert 0.35 < len(kept) / 1000 < 0.65

    def test_dropout_rate_validation(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)


def einsum_conv_reference(weight, bias, x, grad_out):
    """The retired strided-einsum Conv1D forward/backward, kept as the
    reference the im2col GEMM kernel must reproduce."""
    kernel_size = weight.shape[0]
    if x.shape[1] < kernel_size:
        pad = kernel_size - x.shape[1]
        x = np.pad(x, ((0, 0), (0, pad), (0, 0)))
    batch, seq, channels = x.shape
    out_seq = seq - kernel_size + 1
    stride_b, stride_s, stride_c = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x, shape=(batch, out_seq, kernel_size, channels),
        strides=(stride_b, stride_s, stride_s, stride_c), writeable=False,
    )
    out = np.einsum("bokc,kcf->bof", windows, weight, optimize=True) + bias
    grad_w = np.einsum("bokc,bof->kcf", windows, grad_out, optimize=True)
    grad_b = grad_out.sum(axis=(0, 1))
    grad_x = np.zeros_like(x)
    contribution = np.einsum(
        "bof,kcf->bokc", grad_out, weight, optimize=True
    )
    for k in range(kernel_size):
        grad_x[:, k : k + out_seq, :] += contribution[:, :, k, :]
    return out, grad_w, grad_b, grad_x


class TestConvIm2col:
    """The im2col GEMM kernel against the einsum reference."""

    @pytest.mark.parametrize(
        "batch,seq,channels,filters,kernel",
        [
            (1, 1, 1, 1, 1),
            (2, 10, 4, 7, 3),
            (3, 5, 2, 4, 5),   # seq == kernel
            (2, 3, 4, 7, 5),   # seq < kernel: padded path
            (5, 24, 16, 32, 2),
            (1, 7, 3, 2, 4),
        ],
    )
    def test_matches_einsum_reference(
        self, rng, batch, seq, channels, filters, kernel
    ):
        conv = Conv1D(channels, filters, kernel, rng)
        x = rng.normal(size=(batch, seq, channels))
        out_seq = max(seq, kernel) - kernel + 1
        g = rng.normal(size=(batch, out_seq, filters))
        out = conv.forward(x, training=True)
        grad_x = conv.backward(g)
        ref_out, ref_gw, ref_gb, ref_gx = einsum_conv_reference(
            conv.weight, conv.bias, x, g
        )
        # einsum may pick a different contraction order on small shapes, so
        # allow float64 roundoff; the results are numerically identical.
        assert np.allclose(out, ref_out, rtol=1e-12, atol=1e-12)
        assert np.allclose(conv.grads[0], ref_gw, rtol=1e-12, atol=1e-12)
        assert np.allclose(conv.grads[1], ref_gb, rtol=1e-12, atol=1e-12)
        assert np.allclose(grad_x, ref_gx, rtol=1e-12, atol=1e-12)

    def test_randomized_shapes(self, rng):
        for _ in range(20):
            batch = int(rng.integers(1, 6))
            seq = int(rng.integers(1, 16))
            channels = int(rng.integers(1, 8))
            filters = int(rng.integers(1, 8))
            kernel = int(rng.integers(1, 6))
            conv = Conv1D(channels, filters, kernel, rng)
            x = rng.normal(size=(batch, seq, channels))
            out_seq = max(seq, kernel) - kernel + 1
            g = rng.normal(size=(batch, out_seq, filters))
            out = conv.forward(x, training=True)
            grad_x = conv.backward(g)
            ref = einsum_conv_reference(conv.weight, conv.bias, x, g)
            assert np.allclose(out, ref[0], rtol=1e-12, atol=1e-12)
            assert np.allclose(conv.grads[0], ref[1], rtol=1e-12, atol=1e-12)
            assert np.allclose(conv.grads[1], ref[2], rtol=1e-12, atol=1e-12)
            assert np.allclose(grad_x, ref[3], rtol=1e-12, atol=1e-12)

    def test_float32_dtype_threads_through(self, rng):
        conv = Conv1D(4, 7, 3, rng, dtype=np.float32)
        assert conv.weight.dtype == np.float32
        x = rng.normal(size=(2, 10, 4)).astype(np.float32)
        out = conv.forward(x, training=True)
        assert out.dtype == np.float32
        grad_x = conv.backward(out)
        assert grad_x.dtype == np.float32
        assert conv.grads[0].dtype == np.float32

    def test_backward_buffer_reuse_is_correct(self, rng):
        """Consecutive backward calls reuse the gradient buffer; the second
        result must not be polluted by the first."""
        conv = Conv1D(3, 5, 2, rng)
        x1 = rng.normal(size=(2, 8, 3))
        g1 = rng.normal(size=(2, 7, 5))
        conv.forward(x1, training=True)
        first = conv.backward(g1).copy()
        conv.zero_grad()
        conv.forward(x1, training=True)
        again = conv.backward(g1)
        assert np.array_equal(first, again)
        # different shape: a fresh buffer must be allocated
        x2 = rng.normal(size=(4, 6, 3))
        g2 = rng.normal(size=(4, 5, 5))
        conv.zero_grad()
        conv.forward(x2, training=True)
        assert conv.backward(g2).shape == x2.shape

    def test_pool_buffer_reuse_is_correct(self, rng):
        pool = GlobalMaxPool1D()
        x = rng.normal(size=(3, 6, 4))
        pool.forward(x)
        g = rng.normal(size=(3, 4))
        first = pool.backward(g).copy()
        pool.forward(x)
        again = pool.backward(g)
        assert np.array_equal(first, again)
        # stale entries from the previous call must be zeroed
        assert np.count_nonzero(again) == g.size

    def test_embedding_backward_returns_none(self, rng):
        emb = Embedding(5, 3, rng)
        emb.forward(np.array([[1, 2]]), training=True)
        assert emb.backward(np.ones((1, 2, 3))) is None


class TestLossesAndOptim:
    def test_softmax_rows(self, rng):
        probs = softmax(rng.normal(size=(5, 3)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0, 1]))
        assert loss < 1e-6
        assert np.abs(grad).max() < 1e-6

    def test_adam_reduces_quadratic(self):
        param = np.array([5.0])
        grad = np.zeros(1)
        optimizer = Adam([param], [grad], lr=0.1)
        for _ in range(300):
            grad[0] = 2 * param[0]
            optimizer.step()
        assert abs(param[0]) < 0.1

    def test_sgd_momentum(self):
        param = np.array([5.0])
        grad = np.zeros(1)
        optimizer = SGD([param], [grad], lr=0.05, momentum=0.9)
        for _ in range(200):
            grad[0] = 2 * param[0]
            optimizer.step()
        assert abs(param[0]) < 0.2


class TestEncoding:
    def test_shapes_and_padding(self):
        codes = encode_text("ab", 5)
        assert codes.shape == (5,)
        assert codes[2] == PAD_CODE

    def test_unknown_chars(self):
        codes = encode_text("日本", 4)
        assert codes[0] == UNK_CODE

    def test_case_insensitive(self):
        assert np.array_equal(encode_text("ABC", 3), encode_text("abc", 3))

    def test_batch(self):
        batch = encode_batch(["a", "bb"], 4)
        assert batch.shape == (2, 4)
        assert batch.max() < VOCAB_SIZE

    def test_truncation(self):
        assert encode_text("abcdef", 3).shape == (3,)
