"""Tests for the weak-supervision extension (LFs, label models, amplify)."""

import numpy as np
import pytest

from repro.core.featurize import profile_column
from repro.datagen.corpus import generate_corpus
from repro.tabular.column import Column
from repro.types import FeatureType
from repro.weak import (
    MajorityVote,
    NamedLF,
    WeightedVote,
    amplify,
    default_labeling_functions,
    lf_from_tool,
    lf_summary,
    select_confident,
    vote_matrix,
)
from repro.weak.label_model import WeakLabel


def _profiled(columns):
    return [profile_column(c) for c in columns]


@pytest.fixture(scope="module")
def weak_corpus():
    corpus = generate_corpus(n_examples=300, seed=23)
    by_key = {(t.name, c.name): c for t in corpus.files for c in t}
    columns = [
        by_key[(p.source_file, p.name)] for p in corpus.dataset.profiles
    ]
    return corpus, columns


class TestLabelingFunctions:
    def test_default_set_nonempty(self):
        lfs = default_labeling_functions()
        assert len(lfs) >= 10
        names = [lf.name for lf in lfs]
        assert len(set(names)) == len(names)

    def test_signal_lfs_vote_and_abstain(self):
        lfs = {lf.name: lf for lf in default_labeling_functions(False)}
        url_col = Column("u", [f"https://www.a.com/{i}" for i in range(10)])
        url_profile = profile_column(url_col)
        assert lfs["url_samples"](url_col, url_profile) is FeatureType.URL
        plain = Column("x", ["hello", "there"])
        assert lfs["url_samples"](plain, profile_column(plain)) is None

    def test_tool_lf_never_abstains(self, weak_corpus):
        from repro.tools import TFDVTool

        corpus, columns = weak_corpus
        lf = lf_from_tool(TFDVTool())
        votes = [
            lf(column, profile)
            for column, profile in zip(columns[:30], corpus.dataset.profiles[:30])
        ]
        assert all(v is not None for v in votes)


class TestLabelModels:
    def test_vote_matrix_shape(self, weak_corpus):
        corpus, columns = weak_corpus
        lfs = default_labeling_functions(False)
        matrix = vote_matrix(lfs, columns[:20], corpus.dataset.profiles[:20])
        assert len(matrix) == 20
        assert all(len(row) == len(lfs) for row in matrix)

    def test_majority_vote_accuracy_beats_chance(self, weak_corpus):
        corpus, columns = weak_corpus
        model = MajorityVote(default_labeling_functions())
        weak_labels = model.predict(columns, corpus.dataset.profiles)
        truth = corpus.dataset.labels
        voted = [
            (w.label, t) for w, t in zip(weak_labels, truth)
            if w.label is not None
        ]
        assert voted
        accuracy = sum(1 for w, t in voted if w == t) / len(voted)
        assert accuracy > 0.45  # far above 1/9 chance

    def test_weighted_beats_or_matches_majority(self, weak_corpus):
        corpus, columns = weak_corpus
        n_dev = 120
        lfs = default_labeling_functions()
        truth = corpus.dataset.labels
        weighted = WeightedVote(lfs).fit(
            columns[:n_dev], corpus.dataset.profiles[:n_dev], truth[:n_dev]
        )
        majority = MajorityVote(lfs)
        rest_cols = columns[n_dev:]
        rest_profiles = corpus.dataset.profiles[n_dev:]
        rest_truth = truth[n_dev:]

        def accuracy(weak_labels):
            voted = [
                (w.label, t) for w, t in zip(weak_labels, rest_truth)
                if w.label is not None
            ]
            return sum(1 for w, t in voted if w == t) / len(voted)

        acc_weighted = accuracy(weighted.predict(rest_cols, rest_profiles))
        acc_majority = accuracy(majority.predict(rest_cols, rest_profiles))
        assert acc_weighted >= acc_majority - 0.05

    def test_weighted_requires_fit(self, weak_corpus):
        corpus, columns = weak_corpus
        model = WeightedVote(default_labeling_functions())
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict(columns[:2], corpus.dataset.profiles[:2])

    def test_lf_summary_bounds(self, weak_corpus):
        corpus, columns = weak_corpus
        rows = lf_summary(
            default_labeling_functions(False),
            columns,
            corpus.dataset.profiles,
            corpus.dataset.labels,
        )
        for row in rows:
            assert 0.0 <= row["coverage"] <= 1.0
            assert 0.0 <= row["accuracy"] <= 1.0

    def test_empty_lfs_rejected(self):
        with pytest.raises(ValueError):
            MajorityVote([])


class TestSelectConfident:
    def test_filters(self):
        weak_labels = [
            WeakLabel(FeatureType.NUMERIC, 3, 0.9),
            WeakLabel(FeatureType.NUMERIC, 1, 0.9),  # too few votes
            WeakLabel(FeatureType.NUMERIC, 3, 0.3),  # low confidence
            WeakLabel(None, 0, 0.0),  # abstained
        ]
        assert select_confident(weak_labels) == [0]


class TestAmplify:
    def test_amplification_improves_or_holds(self, weak_corpus):
        corpus, columns = weak_corpus
        n_dev = 80
        dev = corpus.dataset.subset(range(n_dev))
        dev_columns = columns[:n_dev]
        unlabeled_profiles = corpus.dataset.profiles[n_dev:]
        unlabeled_columns = columns[n_dev:]

        result = amplify(
            dev, dev_columns, unlabeled_profiles, unlabeled_columns,
            n_estimators=12,
        )
        assert result.n_dev == n_dev
        assert result.n_weakly_labeled > 0
        assert result.weak_label_accuracy > 0.6

        eval_corpus = generate_corpus(n_examples=200, seed=24)
        dev_only_acc = result.dev_only_model.score(eval_corpus.dataset)
        amplified_acc = result.amplified_model.score(eval_corpus.dataset)
        # weak labels should not wreck the model; typically they help
        assert amplified_acc >= dev_only_acc - 0.08
