"""Tests for Snuba-style labeling-function synthesis."""

import pytest

from repro.datagen.corpus import generate_corpus
from repro.weak.synthesis import (
    StumpSpec,
    stump_to_lf,
    synthesize_labeling_functions,
    synthesize_stumps,
)
from repro.types import FeatureType


@pytest.fixture(scope="module")
def dev_set():
    return generate_corpus(n_examples=300, seed=41).dataset


def test_synthesis_finds_high_precision_stumps(dev_set):
    specs = synthesize_stumps(dev_set, min_precision=0.85, min_coverage=0.03)
    assert specs, "no stumps synthesized"
    for spec in specs:
        assert spec.dev_precision >= 0.85
        assert spec.dev_coverage >= 0.03
        assert spec.direction in ("le", "gt")


def test_per_class_cap(dev_set):
    specs = synthesize_stumps(dev_set, min_precision=0.7, max_per_class=2)
    per_class = {}
    for spec in specs:
        per_class[spec.label] = per_class.get(spec.label, 0) + 1
    assert all(count <= 2 for count in per_class.values())


def test_stump_lf_votes_and_abstains(dev_set):
    specs = synthesize_stumps(dev_set, min_precision=0.85)
    lf = stump_to_lf(specs[0])
    votes = [lf(None, profile) for profile in dev_set.profiles]
    fired = [v for v in votes if v is not None]
    assert fired and len(fired) < len(votes)
    assert all(v is specs[0].label for v in fired)


def test_synthesized_lfs_generalize(dev_set):
    """Precision measured on an unseen corpus stays well above chance."""
    lfs = synthesize_labeling_functions(dev_set, min_precision=0.9)
    fresh = generate_corpus(n_examples=300, seed=42).dataset
    correct = fired = 0
    for lf in lfs:
        for profile in fresh.profiles:
            vote = lf(None, profile)
            if vote is None:
                continue
            fired += 1
            if vote is profile.label:
                correct += 1
    assert fired > 0
    assert correct / fired > 0.6


def test_stump_spec_stat_name():
    spec = StumpSpec(0, 1.0, "le", FeatureType.NUMERIC, 1.0, 0.5)
    assert spec.stat_name == "total_values"


def test_synthesized_lfs_compose_with_label_model(dev_set):
    from repro.weak import MajorityVote, default_labeling_functions

    lfs = default_labeling_functions(False) + synthesize_labeling_functions(
        dev_set, min_precision=0.9
    )
    # columns unused by stump LFs; pass profiles twice via dummy columns
    from repro.tabular.column import Column

    dummy_columns = [Column(p.name, p.samples) for p in dev_set.profiles]
    weak_labels = MajorityVote(lfs).predict(dummy_columns, dev_set.profiles)
    voted = [
        (w.label, truth)
        for w, truth in zip(weak_labels, dev_set.labels)
        if w.label is not None
    ]
    assert voted
    accuracy = sum(1 for w, t in voted if w is t) / len(voted)
    assert accuracy > 0.5
