"""Tests for logistic regression, ridge regression, and the RBF-SVM."""

import numpy as np
import pytest

from repro.ml.base import NotFittedError
from repro.ml.linear import LogisticRegression, RidgeRegression
from repro.ml.svm import RBFSVM, rbf_kernel


@pytest.fixture()
def blobs(rng):
    X = np.vstack([rng.normal(0, 1, (80, 4)), rng.normal(4, 1, (80, 4))])
    y = ["neg"] * 80 + ["pos"] * 80
    return X, y


@pytest.fixture()
def three_blobs(rng):
    X = np.vstack(
        [rng.normal(c, 0.7, (50, 3)) for c in (0.0, 4.0, 8.0)]
    )
    y = ["a"] * 50 + ["b"] * 50 + ["c"] * 50
    return X, y


class TestLogisticRegression:
    def test_separable(self, blobs):
        X, y = blobs
        model = LogisticRegression(C=10.0).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_multiclass(self, three_blobs):
        X, y = three_blobs
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.95
        assert model.classes_ == ["a", "b", "c"]

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        model = LogisticRegression().fit(X, y)
        probs = model.predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert probs.min() >= 0.0

    def test_regularization_shrinks_weights(self, blobs):
        X, y = blobs
        strong = LogisticRegression(C=1e-3).fit(X, y)
        weak = LogisticRegression(C=1e3).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="two classes"):
            LogisticRegression().fit(np.zeros((5, 2)), ["a"] * 5)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_nan_input_raises(self):
        X = np.array([[np.nan, 1.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="NaN"):
            LogisticRegression().fit(X, ["a", "b"])


class TestRidge:
    def test_recovers_coefficients(self, rng):
        X = rng.normal(size=(500, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 3.0
        model = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-3)
        assert model.intercept_ == pytest.approx(3.0, abs=1e-3)

    def test_alpha_shrinks(self, rng):
        X = rng.normal(size=(100, 3))
        y = X @ np.array([2.0, -1.0, 0.5])
        light = RidgeRegression(alpha=1e-6).fit(X, y)
        heavy = RidgeRegression(alpha=1e4).fit(X, y)
        assert np.linalg.norm(heavy.coef_) < np.linalg.norm(light.coef_)

    def test_score_is_negative_rmse(self, rng):
        X = rng.normal(size=(50, 2))
        y = X[:, 0]
        model = RidgeRegression(alpha=0.1).fit(X, y)
        assert model.score(X, y) <= 0.0


class TestRBFSVM:
    def test_kernel_values(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [1.0, 0.0]])
        k = rbf_kernel(a, b, gamma=1.0)
        assert k[0, 0] == pytest.approx(1.0)
        assert k[0, 1] == pytest.approx(np.exp(-1.0))

    def test_separable(self, blobs):
        X, y = blobs
        model = RBFSVM(C=1.0, gamma=0.1).fit(X, y)
        assert model.score(X, y) > 0.97

    def test_nonlinear_circles(self, rng):
        # inner cluster vs ring: linear models fail, RBF should not
        angles = rng.uniform(0, 2 * np.pi, 150)
        inner = rng.normal(0, 0.3, (150, 2))
        outer = np.stack([3 * np.cos(angles), 3 * np.sin(angles)], axis=1)
        outer += rng.normal(0, 0.2, (150, 2))
        X = np.vstack([inner, outer])
        y = ["in"] * 150 + ["out"] * 150
        model = RBFSVM(C=10.0, gamma=0.5).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_nystrom_landmark_cap(self, blobs):
        X, y = blobs
        model = RBFSVM(max_landmarks=20).fit(X, y)
        assert model.landmarks_.shape[0] == 20
        assert model.score(X, y) > 0.9

    def test_proba_rows_sum_to_one(self, blobs):
        X, y = blobs
        model = RBFSVM().fit(X, y)
        assert np.allclose(model.predict_proba(X).sum(axis=1), 1.0)
