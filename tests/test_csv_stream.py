"""Tests for the incremental CSV reader (``iter_csv_chunks``).

The contract: concatenating every chunk's rows reproduces the whole-file
reader (``load_csv_table``) row for row — same header, same cells, same
counters, same typed errors — at *any* I/O chunk size, including sizes
that split multi-byte codepoints and quoted fields across reads.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.faults import FaultPlan, faults
from repro.obs import telemetry
from repro.tabular.csv_io import (
    CSVReadError,
    iter_csv_chunks,
    load_csv_table,
)

MANGLED_DIR = Path(__file__).parent / "data" / "mangled"


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.clear()
    yield
    faults.clear()


def streamed_rows(source, **kwargs):
    """(header, rows) concatenated over all chunks of a stream."""
    header = None
    rows = []
    for chunk in iter_csv_chunks(source, **kwargs):
        if header is None:
            header = list(chunk.header)
        else:
            assert list(chunk.header) == header  # header repeats verbatim
        rows.extend(chunk.rows)
    return header, rows


def table_rows(path):
    table = load_csv_table(path)
    return table.column_names, [list(row) for row in table.rows()]


class TestBatchParity:
    @pytest.mark.parametrize(
        "path", sorted(MANGLED_DIR.glob("*.csv")), ids=lambda p: p.name
    )
    @pytest.mark.parametrize("io_chunk_bytes", [3, 7, 65536])
    def test_mangled_corpus_parity(self, path, io_chunk_bytes):
        """Every fuzz-corpus file parses identically (or raises the same
        typed error) streamed at any byte granularity vs whole-file."""
        try:
            want = table_rows(path)
        except CSVReadError:
            with pytest.raises(CSVReadError):
                streamed_rows(path, io_chunk_bytes=io_chunk_bytes)
            return
        got = streamed_rows(path, io_chunk_bytes=io_chunk_bytes)
        if want[1]:
            assert got == want
        else:
            # Header-only files: the batch loader keeps the header; the
            # stream yields it in a single empty chunk.
            assert got[0] == want[0] and got[1] == []

    def test_split_codepoint_cells_survive_one_byte_reads(self):
        path = MANGLED_DIR / "split_codepoint.csv"
        header, rows = streamed_rows(path, io_chunk_bytes=1)
        assert header == ["name", "emoji", "city"]
        assert rows[0] == ["café0", "😀🚀é€", "北京"]
        assert (header, rows) == table_rows(path)

    def test_quoted_field_spanning_chunks(self):
        path = MANGLED_DIR / "quoted_span.csv"
        header, rows = streamed_rows(path, io_chunk_bytes=2)
        assert header == ["id", "comment", "score"]
        assert rows[0][1] == 'first line\nsecond line\nthird "quoted" line'
        assert (header, rows) == table_rows(path)

    def test_decode_replacement_counted_once(self):
        telemetry.enable()
        telemetry.reset()
        try:
            streamed_rows(MANGLED_DIR / "latin1.csv", io_chunk_bytes=3)
            replaced = telemetry.metrics.counter("csv.decode_replaced").value
        finally:
            telemetry.reset()
            telemetry.disable()
        assert replaced == 1


class TestChunkShapes:
    CSV = ("a,b\n" + "\n".join(f"{i},x{i}" for i in range(10)) + "\n").encode()

    def test_chunk_rows_and_indices(self):
        chunks = list(
            iter_csv_chunks(io.BytesIO(self.CSV), name="t", chunk_rows=4)
        )
        assert [c.index for c in chunks] == [0, 1, 2]
        assert [c.n_rows for c in chunks] == [4, 4, 2]
        assert all(c.header == ["a", "b"] for c in chunks)
        assert chunks[2].rows[-1] == ["9", "x9"]

    def test_header_only_stream_yields_one_empty_chunk(self):
        chunks = list(iter_csv_chunks(io.BytesIO(b"a,b\n"), name="t"))
        assert len(chunks) == 1
        assert chunks[0].header == ["a", "b"]
        assert chunks[0].rows == []

    def test_empty_stream_raises_like_batch(self):
        with pytest.raises(CSVReadError, match="empty CSV"):
            list(iter_csv_chunks(io.BytesIO(b""), name="t"))

    def test_bytes_iterable_source(self):
        pieces = [self.CSV[i : i + 5] for i in range(0, len(self.CSV), 5)]
        header, rows = streamed_rows(iter(pieces), name="t")
        assert header == ["a", "b"]
        assert len(rows) == 10

    def test_non_bytes_iterable_rejected(self):
        with pytest.raises(CSVReadError, match="expected bytes"):
            list(iter_csv_chunks(iter(["not-bytes"]), name="t"))

    def test_bad_chunk_rows_rejected(self):
        with pytest.raises(ValueError, match="chunk_rows"):
            list(iter_csv_chunks(io.BytesIO(self.CSV), chunk_rows=0))

    def test_explicit_delimiter_skips_sniffing(self):
        data = b"a;b\n1;2\n"
        header, rows = streamed_rows(
            io.BytesIO(data), name="t", delimiter=";"
        )
        assert header == ["a", "b"]
        assert rows == [["1", "2"]]

    def test_sniffed_delimiter_matches_batch(self, tmp_path):
        path = tmp_path / "semi.csv"
        path.write_bytes(b"a;b;c\n1;2;3\n4;5;6\n")
        assert streamed_rows(path, io_chunk_bytes=2) == table_rows(path)


class TestReadChunkFault:
    def test_fault_surfaces_as_csv_read_error(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_bytes(b"a,b\n1,2\n3,4\n")
        faults.install(
            FaultPlan.from_dict({
                "seed": 0,
                "rules": [
                    {"point": "csv.read_chunk", "mode": "error", "on_call": 1}
                ],
            })
        )
        with pytest.raises(CSVReadError, match="injected fault"):
            list(iter_csv_chunks(path, io_chunk_bytes=4))

    def test_mid_stream_fault_after_clean_chunks(self, tmp_path):
        path = tmp_path / "plain.csv"
        body = b"a,b\n" + b"".join(b"%d,x\n" % i for i in range(100))
        path.write_bytes(body)
        faults.install(
            FaultPlan.from_dict({
                "seed": 0,
                "rules": [
                    {"point": "csv.read_chunk", "mode": "error", "on_call": 3}
                ],
            })
        )
        chunks = iter_csv_chunks(path, io_chunk_bytes=64, chunk_rows=8)
        first = next(chunks)  # reads 1-2 survive the first row chunk
        assert first.n_rows == 8
        with pytest.raises(CSVReadError, match="injected fault"):
            list(chunks)

    def test_fault_on_iterable_source(self):
        faults.install(
            FaultPlan.from_dict({
                "seed": 0,
                "rules": [
                    {"point": "csv.read_chunk", "mode": "error", "on_call": 2}
                ],
            })
        )
        pieces = iter([b"a,b\n", b"1,2\n", b"3,4\n"])
        with pytest.raises(CSVReadError, match="injected fault"):
            streamed_rows(pieces, name="t")
