"""Tests for JSON/JSON-lines ingestion."""

import pytest

from repro.tabular.json_io import (
    read_json,
    read_json_text,
    read_jsonl,
    read_jsonl_text,
)


class TestJsonArray:
    def test_records(self):
        table = read_json_text('[{"a": 1, "b": "x"}, {"a": 2.5, "b": null}]')
        assert table.column_names == ["a", "b"]
        assert table["a"].cells == ["1", "2.5"]
        assert table["b"].cells == ["x", None]

    def test_ragged_records_unioned(self):
        table = read_json_text('[{"a": 1}, {"b": 2}]')
        assert table.column_names == ["a", "b"]
        assert table["a"].cells == ["1", None]
        assert table["b"].cells == [None, "2"]

    def test_column_major(self):
        table = read_json_text('{"x": [1, 2], "y": ["a", "b"]}')
        assert table["x"].cells == ["1", "2"]

    def test_single_object(self):
        table = read_json_text('{"a": 1, "b": "x"}')
        assert len(table) == 1

    def test_booleans_and_nested(self):
        table = read_json_text(
            '[{"flag": true, "meta": {"k": 1}, "tags": [1, 2]}]'
        )
        assert table["flag"].cells == ["true"]
        assert table["meta"].cells == ['{"k":1}']
        assert table["tags"].cells == ["[1,2]"]

    def test_scalar_root_rejected(self):
        with pytest.raises(ValueError, match="array or object"):
            read_json_text("42")

    def test_empty_array_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_json_text("[]")

    def test_non_object_elements_rejected(self):
        with pytest.raises(ValueError, match="must be objects"):
            read_json_text("[1, 2]")


class TestJsonl:
    def test_basic(self):
        table = read_jsonl_text('{"a": 1}\n\n{"a": 2}\n')
        assert table["a"].cells == ["1", "2"]

    def test_bad_line_reports_line_number(self):
        with pytest.raises(ValueError, match="line 2"):
            read_jsonl_text('{"a": 1}\nnot json\n')

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="expected an object"):
            read_jsonl_text("[1]\n")

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            read_jsonl_text("\n\n")


class TestFiles:
    def test_read_json_file(self, tmp_path):
        path = tmp_path / "data.json"
        path.write_text('[{"a": 1}]', encoding="utf-8")
        table = read_json(path)
        assert table.name == "data"

    def test_read_jsonl_file(self, tmp_path):
        path = tmp_path / "data.jsonl"
        path.write_text('{"a": 1}\n{"a": 2}\n', encoding="utf-8")
        table = read_jsonl(path)
        assert len(table) == 2


def test_json_feeds_the_pipeline(tmp_path):
    """JSON ingestion composes with profiling like CSV does."""
    from repro.core.featurize import profile_table

    table = read_json_text(
        '[{"salary": 1200.5, "zip": "92092"},'
        ' {"salary": 3400.25, "zip": "78712"}]'
    )
    profiles = profile_table(table)
    assert [p.name for p in profiles] == ["salary", "zip"]
    assert profiles[0].stats["numeric_fraction"] == 1.0
