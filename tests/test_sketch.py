"""Tests for ``repro.sketch``: exact moments, parity with the batch
kernel, merge order-independence, and bounded-state behavior.

The parity contract under test (documented in
``src/repro/sketch/column.py``): 23 of the 25 statistics are
bit-identical to ``compute_stats_batch`` on the same rows;
``mean_value``/``std_value`` (indices 5 and 6) may differ by numpy's own
pairwise-summation rounding — asserted here to stay within a few ulp.
"""

from __future__ import annotations

import io
import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.featurize import ProfileError, profile_table
from repro.core.stats import STAT_INDEX, StatsScanCache, compute_stats_batch
from repro.obs import telemetry
from repro.sketch import ColumnSketch, SketchConfig, StreamingProfiler, profile_csv_stream
from repro.sketch.accumulator import ExactMoments
from repro.tabular.column import Column
from repro.tabular.csv_io import iter_csv_chunks, read_csv_text

#: Stat indices allowed to carry the float-reassociation delta.
ULP_INDICES = (STAT_INDEX["mean_value"], STAT_INDEX["std_value"])
#: Empirical bound from the accumulator docs: numpy's pairwise summation
#: stays within a few ulp of the correctly-rounded exact moments.  The
#: batch kernel's sum/sumsq cancellation can reach ~5 ulp on short,
#: ill-conditioned columns (e.g. [353161, 995.312, -322288]), so the
#: bound leaves headroom while staying firmly ulp-level.
ULP_BOUND = 16

cells_strategy = st.lists(
    st.one_of(
        st.none(),
        st.integers(-10_000, 10_000).map(str),
        st.floats(-1e6, 1e6, allow_nan=False).map(lambda v: f"{v:.6g}"),
        st.text(alphabet="abc xyz;,.!?0123456789", max_size=20),
        st.sampled_from(["NA", "null", "", "true", "False", "yes"]),
    ),
    min_size=1,
    max_size=60,
)


def assert_stats_match(streamed, batch, context=""):
    """23/25 bit-identical; mean/std within ``ULP_BOUND`` ulp.

    The ulp scale is anchored on the *data* magnitude (|min|/|max|, which
    are bit-identical between the two paths), not just the statistic
    itself: the batch kernel's sum/sumsq cancellation error is relative
    to the values it summed, so columns like [523289, 999.332, -499713]
    can be exact to <1 ulp of the inputs yet tens of ulp of the much
    smaller mean, and a constant column's exact std of 0.0 may
    legitimately differ from the batch kernel's eps-of-the-mean residue.
    """
    got, want = streamed.values, batch.values
    data_scale = max(
        abs(want[STAT_INDEX["mean_value"]]),
        abs(want[STAT_INDEX["min_value"]]),
        abs(want[STAT_INDEX["max_value"]]),
    )
    for index in range(len(want)):
        if index in ULP_INDICES:
            scale = max(abs(got[index]), abs(want[index]), data_scale, 1e-300)
            assert abs(got[index] - want[index]) <= ULP_BOUND * np.spacing(
                scale
            ), f"stat {index} beyond ulp bound{context}: {got[index]!r} != {want[index]!r}"
        else:
            assert got[index] == want[index], (
                f"stat {index} not bit-identical{context}: "
                f"{got[index]!r} != {want[index]!r}"
            )


def batch_stats(cells):
    return compute_stats_batch([Column("x", list(cells))])[0]


class TestExactMoments:
    def test_matches_fraction_reference(self):
        values = [0.1, 0.2, 0.3, 1e-300, 1e150, -7.25, 3.0]
        moments = ExactMoments()
        moments.add_many(values)
        mean, std = moments.mean_std()
        exact = [Fraction(v) for v in values]
        mean_ref = sum(exact) / len(exact)
        var_ref = sum(f * f for f in exact) / len(exact) - mean_ref * mean_ref
        assert mean == float(mean_ref)
        assert std == math.sqrt(float(var_ref))
        assert moments.min == min(values)
        assert moments.max == max(values)

    def test_weighted_equals_repeated(self):
        repeated, weighted = ExactMoments(), ExactMoments()
        for value in (1.5, -2.25, 1e-10):
            for _ in range(3):
                repeated.add(value)
            weighted.add_weighted(value, 3)
        assert repeated == weighted

    def test_merge_any_partition(self):
        values = [math.pi, -1e200, 1e-200, 42.0, 0.125] * 4
        whole = ExactMoments()
        whole.add_many(values)
        for cut in (1, 3, 7, 19):
            left, right = ExactMoments(), ExactMoments()
            left.add_many(values[:cut])
            right.add_many(values[cut:])
            assert left.merge(right) == whole

    def test_rejects_non_finite(self):
        moments = ExactMoments()
        with pytest.raises(ValueError):
            moments.add(math.inf)
        with pytest.raises(ValueError):
            moments.add(math.nan)

    def test_empty_is_zero(self):
        assert ExactMoments().mean_std() == (0.0, 0.0)

    def test_catastrophic_cancellation_is_exact(self):
        # 1e16 + 1 - 1e16: float accumulation loses the 1; big ints don't.
        moments = ExactMoments()
        moments.add_many([1e16, 1.0, -1e16])
        mean, _ = moments.mean_std()
        assert mean == float(Fraction(1, 3))


class TestSketchParity:
    @given(cells=cells_strategy)
    @settings(max_examples=60, deadline=None)
    def test_single_pass_matches_batch_kernel(self, cells):
        sketch = ColumnSketch("x")
        sketch.update(cells)
        assert_stats_match(sketch.finalize(), batch_stats(cells))

    @given(cells=cells_strategy, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_is_order_independent(self, cells, data):
        # Split into chunks, sketch each with its true offset, merge in a
        # shuffled order: bit-identical to the single-pass sketch.
        n_cuts = data.draw(st.integers(0, 4))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, len(cells)),
                    min_size=n_cuts,
                    max_size=n_cuts,
                )
            )
        )
        bounds = [0, *cuts, len(cells)]
        shards = []
        for start, stop in zip(bounds, bounds[1:]):
            shard = ColumnSketch("x")
            shard.update(cells[start:stop], cell_offset=start)
            shards.append(shard)
        order = data.draw(st.permutations(range(len(shards))))
        merged = shards[order[0]]
        for position in order[1:]:
            merged.merge(shards[position])

        single = ColumnSketch("x")
        single.update(cells)
        assert merged.samples() == single.samples()
        assert merged.distinct_count == single.distinct_count
        got, want = merged.finalize().values, single.finalize().values
        assert got.tolist() == want.tolist()  # merge itself is bit-exact
        assert_stats_match(merged.finalize(), batch_stats(cells))

    def test_chunked_update_matches_head_samples(self):
        cells = [f"v{i % 7}" for i in range(40)]
        sketch = ColumnSketch("x")
        for start in range(0, len(cells), 6):
            sketch.update(cells[start : start + 6])
        assert sketch.samples() == Column("x", cells).head_distinct(5)

    def test_shared_scan_cache_changes_nothing(self):
        cells = ["1", "2", "spam", None, "2"] * 9
        cache = StatsScanCache()
        shared, private = ColumnSketch("x"), ColumnSketch("x")
        for start in range(0, len(cells), 10):
            shared.update(cells[start : start + 10], scan_cache=cache)
            private.update(cells[start : start + 10])
        assert shared.finalize().values.tolist() == private.finalize().values.tolist()


class TestBoundedState:
    def test_spill_reports_exactly_the_cap(self):
        config = SketchConfig(distinct_cap=8)
        sketch = ColumnSketch("x", config)
        sketch.update([f"v{i}" for i in range(30)])
        assert sketch.distinct_overflowed
        assert sketch.distinct_count == 8
        assert sketch.finalize()["num_distinct"] == 8.0
        with pytest.raises(ValueError, match="spilled"):
            sketch.distinct_values()

    def test_spill_is_merge_order_independent(self):
        config = SketchConfig(distinct_cap=8)
        chunks = [[f"v{i + 10 * c}" for i in range(6)] for c in range(4)]
        offsets = [0, 6, 12, 18]
        single = ColumnSketch("x", config)
        for chunk in chunks:
            single.update(chunk)
        for order in ([0, 1, 2, 3], [3, 1, 0, 2], [2, 3, 1, 0]):
            shards = []
            for index in order:
                shard = ColumnSketch("x", config)
                shard.update(chunks[index], cell_offset=offsets[index])
                shards.append(shard)
            merged = shards[0]
            for shard in shards[1:]:
                merged.merge(shard)
            assert merged.distinct_overflowed == single.distinct_overflowed
            assert merged.distinct_count == single.distinct_count == 8

    def test_below_cap_distinct_is_exact(self):
        sketch = ColumnSketch("x", SketchConfig(distinct_cap=100))
        sketch.update(["a", "b", "a", None, "NA", "c"])
        assert not sketch.distinct_overflowed
        assert sketch.distinct_count == 3
        assert sketch.distinct_values() == ["a", "b", "c"]

    def test_merge_rejects_config_mismatch(self):
        left = ColumnSketch("x", SketchConfig(distinct_cap=8))
        right = ColumnSketch("x", SketchConfig(distinct_cap=9))
        with pytest.raises(ValueError, match="different configs"):
            left.merge(right)


class TestReservoirSamples:
    def test_depends_only_on_distinct_set(self):
        config = SketchConfig(sample_mode="reservoir", seed=5)
        values = [f"item-{i}" for i in range(50)]
        forward, backward = ColumnSketch("x", config), ColumnSketch("x", config)
        forward.update(values)
        backward.update(values[::-1] * 2)  # order and multiplicity differ
        assert forward.samples() == backward.samples()
        assert len(forward.samples()) == 5

    def test_merge_matches_single_pass(self):
        config = SketchConfig(sample_mode="reservoir", seed=1)
        values = [f"item-{i}" for i in range(40)]
        single = ColumnSketch("x", config)
        single.update(values)
        left, right = ColumnSketch("x", config), ColumnSketch("x", config)
        left.update(values[:13], cell_offset=0)
        right.update(values[13:], cell_offset=13)
        assert left.merge(right).samples() == single.samples()

    def test_seed_changes_the_sample(self):
        values = [f"item-{i}" for i in range(50)]
        samples = []
        for seed in (0, 1):
            sketch = ColumnSketch("x", SketchConfig(sample_mode="reservoir", seed=seed))
            sketch.update(values)
            samples.append(sketch.samples())
        assert samples[0] != samples[1]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="sample_mode"):
            SketchConfig(sample_mode="bogus")


CSV_TEXT = "id,amount,city,note\n" + "\n".join(
    f"{i},{i * 1.25 + 0.5:.2f},{['CA', 'TX', 'NY'][i % 3]},note {i % 11}"
    for i in range(200)
)


class TestStreamingProfiler:
    def _streamed(self, text, **kwargs):
        return profile_csv_stream(
            io.BytesIO(text.encode("utf-8")), name="t", **kwargs
        )

    def _batch(self, text):
        return profile_table(read_csv_text(text, name="t"))

    def test_profiles_match_profile_table(self):
        streamed = self._streamed(CSV_TEXT, chunk_rows=32)
        batch = self._batch(CSV_TEXT)
        assert [p.name for p in streamed] == [p.name for p in batch]
        for got, want in zip(streamed, batch):
            assert got.samples == want.samples
            assert got.source_file == want.source_file == "t"
            assert_stats_match(got.stats, want.stats, context=f" ({got.name})")

    def test_scan_cache_recycling_changes_nothing(self):
        telemetry.enable()
        telemetry.reset()
        try:
            tight = self._streamed(
                CSV_TEXT, chunk_rows=16, scan_cache_max_values=10
            )
            resets = telemetry.metrics.counter("sketch.scan_cache_reset").value
        finally:
            telemetry.reset()
            telemetry.disable()
        assert resets > 0  # the tiny threshold actually recycled
        roomy = self._streamed(CSV_TEXT, chunk_rows=16)
        for got, want in zip(tight, roomy):
            assert got.stats.values.tolist() == want.stats.values.tolist()

    def test_profiler_merge_matches_single(self):
        chunks = list(
            iter_csv_chunks(
                io.BytesIO(CSV_TEXT.encode("utf-8")), name="t", chunk_rows=64
            )
        )
        assert len(chunks) >= 3
        single = StreamingProfiler(source_file="t")
        for chunk in chunks:
            single.consume(chunk)
        left = StreamingProfiler(source_file="t", row_offset=0)
        left.consume(chunks[0])
        offset = chunks[0].n_rows
        right = StreamingProfiler(source_file="t", row_offset=offset)
        for chunk in chunks[1:]:
            right.consume(chunk)
        merged = left.merge(right)
        assert merged.n_rows == single.n_rows == 200
        for got, want in zip(merged.profiles(), single.profiles()):
            assert got.samples == want.samples
            assert got.stats.values.tolist() == want.stats.values.tolist()

    def test_empty_stream_raises_profile_error(self):
        with pytest.raises(ProfileError, match="no CSV chunks"):
            StreamingProfiler(source_file="t").profiles()

    def test_header_change_mid_stream_rejected(self):
        profiler = StreamingProfiler(source_file="t")
        profiler.consume(
            next(iter_csv_chunks(io.BytesIO(b"a,b\n1,2\n"), name="t"))
        )
        with pytest.raises(ProfileError, match="header changed"):
            profiler.consume(
                next(iter_csv_chunks(io.BytesIO(b"a,c\n1,2\n"), name="t"))
            )

    def test_telemetry_counters(self):
        telemetry.enable()
        telemetry.reset()
        try:
            self._streamed(CSV_TEXT, chunk_rows=50)
            sketch = ColumnSketch("x", SketchConfig(distinct_cap=2))
            sketch.update(["a", "b", "c"])
            other = ColumnSketch("x", SketchConfig(distinct_cap=2))
            sketch.merge(other)
            counter = telemetry.metrics.counter
            assert counter("sketch.chunks").value == 4
            assert counter("sketch.rows").value == 200
            assert counter("sketch.distinct_spilled").value == 1
            assert counter("sketch.merge").value == 1
            chunk_spans = [s for s in telemetry.spans if s.name == "sketch.chunk"]
            assert len(chunk_spans) == 4
        finally:
            telemetry.reset()
            telemetry.disable()


class TestStreamedCorpus:
    def test_streamed_corpus_matches_batch(self):
        from repro.datagen.corpus import generate_corpus

        batch = generate_corpus(n_examples=60, seed=3)
        streamed = generate_corpus(n_examples=60, seed=3, stream=True)
        assert len(streamed.dataset) == len(batch.dataset)
        assert streamed.truth == batch.truth
        for got, want in zip(streamed.dataset.profiles, batch.dataset.profiles):
            assert got.name == want.name
            assert got.samples == want.samples
            assert got.label == want.label
            assert_stats_match(got.stats, want.stats, context=f" ({got.name})")
