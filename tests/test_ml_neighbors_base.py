"""Tests for k-NN (plain + name/stats) and the estimator base contracts."""

import numpy as np
import pytest

from repro.ml.base import BaseEstimator, NotFittedError, clone
from repro.ml.linear import LogisticRegression
from repro.ml.neighbors import KNeighborsClassifier, NameStatsKNN


class TestKNeighbors:
    def test_nearest_wins(self):
        X = np.array([[0.0], [0.1], [10.0]])
        y = ["a", "a", "b"]
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert model.predict(np.array([[0.05], [9.0]])) == ["a", "b"]

    def test_majority_vote(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = ["a", "a", "b", "b"]
        model = KNeighborsClassifier(n_neighbors=3).fit(X, y)
        assert model.predict(np.array([[0.5]])) == ["a"]

    def test_k_larger_than_train(self):
        X = np.array([[0.0], [1.0]])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, ["a", "b"])
        assert model.predict(np.array([[0.1]]))[0] in ("a", "b")

    def test_proba(self):
        X = np.array([[0.0], [0.2], [10.0]])
        model = KNeighborsClassifier(n_neighbors=3).fit(X, ["a", "a", "b"])
        probs = model.predict_proba(np.array([[0.1]]))
        assert probs.shape == (1, 2)
        assert probs[0].sum() == pytest.approx(1.0)


class TestNameStatsKNN:
    def test_name_signal(self):
        names = ["salary", "income", "zipcode", "zip"]
        stats = np.zeros((4, 2))
        labels = ["NU", "NU", "CA", "CA"]
        model = NameStatsKNN(n_neighbors=1, gamma=0.0).fit(names, stats, labels)
        assert model.predict(["salaries"], np.zeros((1, 2))) == ["NU"]

    def test_stats_signal_with_gamma(self):
        names = ["x", "y", "z", "w"]
        stats = np.array([[0.0], [0.0], [10.0], [10.0]])
        labels = ["low", "low", "high", "high"]
        model = NameStatsKNN(n_neighbors=1, gamma=100.0).fit(names, stats, labels)
        assert model.predict(["q"], np.array([[9.5]])) == ["high"]

    def test_requires_some_signal(self):
        with pytest.raises(ValueError):
            NameStatsKNN(use_stats=False, use_name=False)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            NameStatsKNN().fit(["a"], np.zeros((2, 1)), ["x", "y"])

    def test_score(self):
        names = ["alpha", "beta"]
        stats = np.zeros((2, 1))
        model = NameStatsKNN(n_neighbors=1).fit(names, stats, ["A", "B"])
        assert model.score(names, stats, ["A", "B"]) == 1.0

    def test_negative_name_cap_rejected(self):
        with pytest.raises(ValueError, match="name_cap"):
            NameStatsKNN(name_cap=-1)

    def test_banded_cap_matches_exact(self, rng):
        """With a cap no name distance can exceed, the banded path must be
        identical to the exact path — distances, predictions, and probas."""
        alphabet = list("abcdefgh_")
        names = [
            "".join(rng.choice(alphabet, size=rng.integers(2, 9)))
            for _ in range(30)
        ]
        stats = rng.normal(size=(30, 4))
        y = ["A" if i % 3 else "B" for i in range(30)]
        q_names = names[:10]
        q_stats = rng.normal(size=(10, 4))
        exact = NameStatsKNN(n_neighbors=3).fit(names, stats, y)
        banded = NameStatsKNN(n_neighbors=3, name_cap=50).fit(names, stats, y)
        assert np.array_equal(
            exact.distance_matrix(q_names, q_stats),
            banded.distance_matrix(q_names, q_stats),
        )
        assert exact.predict(q_names, q_stats) == banded.predict(
            q_names, q_stats
        )
        assert np.array_equal(
            exact.predict_proba(q_names, q_stats),
            banded.predict_proba(q_names, q_stats),
        )

    def test_tight_cap_clips_but_still_predicts(self, rng):
        names = ["aaaa", "bbbb", "cccc", "dddd"]
        stats = rng.normal(size=(4, 2))
        model = NameStatsKNN(n_neighbors=1, name_cap=1).fit(
            names, stats, ["A", "A", "B", "B"]
        )
        preds = model.predict(["aaab", "cccd"], stats[:2])
        assert len(preds) == 2


class TestBaseEstimator:
    def test_get_set_params(self):
        model = LogisticRegression(C=2.0)
        assert model.get_params()["C"] == 2.0
        model.set_params(C=5.0)
        assert model.C == 5.0

    def test_set_unknown_param_raises(self):
        with pytest.raises(ValueError, match="invalid parameter"):
            LogisticRegression().set_params(bogus=1)

    def test_clone_is_unfitted_copy(self, rng):
        X = np.vstack([rng.normal(0, 1, (20, 2)), rng.normal(3, 1, (20, 2))])
        y = ["a"] * 20 + ["b"] * 20
        model = LogisticRegression(C=0.5).fit(X, y)
        fresh = clone(model)
        assert fresh.C == 0.5
        with pytest.raises(NotFittedError):
            fresh.predict(X)

    def test_check_fitted_message_names_class(self):
        class Dummy(BaseEstimator):
            def __init__(self):
                pass

        with pytest.raises(NotFittedError, match="Dummy"):
            Dummy()._check_fitted("anything_")
