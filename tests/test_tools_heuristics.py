"""Tests for the shared tool heuristics module."""

import pytest

from repro.tabular.column import Column
from repro.tools.heuristics import (
    DATE_FORMATS,
    date_fraction,
    distinct_fraction,
    float_fraction,
    fraction,
    integer_fraction,
    matches_formats,
    mean_word_count,
    missing_fraction,
)


class TestDateFormats:
    @pytest.mark.parametrize(
        "cell,fmt",
        [("2020-01-02", "iso"), ("2020-01-02 10:11:12", "iso_ts"),
         ("1/2/2020", "us_slash"), ("01/02/2020", "eu_slash"),
         ("March 4, 1797", "long"), ("10:11:12", "time"),
         ("May-07", "mon_year"), ("19980112", "compact")],
    )
    def test_each_format_matches_its_sample(self, cell, fmt):
        assert matches_formats(cell, (fmt,))

    def test_format_subsets_are_exclusive(self):
        # a long date must not match the ISO-only subset
        assert not matches_formats("March 4, 1797", ("iso", "iso_ts"))
        assert not matches_formats("19980112", ("iso", "us_slash", "long"))

    def test_all_formats_registered(self):
        assert set(DATE_FORMATS) == {
            "iso", "iso_ts", "us_slash", "eu_slash", "long", "time",
            "mon_year", "compact",
        }


class TestFractions:
    def test_fraction_predicate(self):
        col = Column("x", ["a", "bb", None])
        assert fraction(col, lambda c: len(c) == 1) == pytest.approx(0.5)

    def test_fraction_empty_column(self):
        assert fraction(Column("x", [None]), lambda c: True) == 0.0

    def test_integer_and_float_fractions(self):
        col = Column("x", ["1", "2.5", "abc", None])
        assert integer_fraction(col) == pytest.approx(1 / 3)
        assert float_fraction(col) == pytest.approx(2 / 3)

    def test_date_fraction(self):
        col = Column("x", ["2020-01-01", "not a date"])
        assert date_fraction(col, ("iso",)) == pytest.approx(0.5)

    def test_mean_word_count(self):
        col = Column("x", ["one", "two words", None])
        assert mean_word_count(col) == pytest.approx(1.5)
        assert mean_word_count(Column("x", [None])) == 0.0

    def test_distinct_and_missing_fractions(self):
        col = Column("x", ["a", "a", "b", None])
        assert distinct_fraction(col) == pytest.approx(0.5)
        assert missing_fraction(col) == pytest.approx(0.25)
        assert missing_fraction(Column("x", [])) == 1.0
