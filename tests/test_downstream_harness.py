"""Tests for the downstream featurization routing and harness."""

import numpy as np
import pytest

from repro.core.newrf import Representation
from repro.datagen.downstream import SPEC_BY_NAME, make_dataset
from repro.downstream.featurize import featurize_split
from repro.downstream.harness import DownstreamScore, evaluate_assignment
from repro.downstream.suite import (
    compare_to_truth,
    run_suite,
    tool_assignments,
    truth_assignments,
)
from repro.tabular.column import Column
from repro.tabular.table import Table
from repro.types import FeatureType


def _tables():
    train = Table(
        [
            Column("num", ["1", "2", "3", None]),
            Column("cat", ["a", "b", "a", "b"]),
            Column("text", ["one two three", "four five", "six", "seven"]),
            Column("key", ["1", "2", "3", "4"]),
        ],
        name="train",
    )
    test = Table(
        [
            Column("num", ["5", "bad"]),
            Column("cat", ["a", "zz"]),
            Column("text", ["one", "unknownword"]),
            Column("key", ["9", "10"]),
        ],
        name="test",
    )
    return train, test


class TestFeaturizeSplit:
    def test_numeric_fills_missing_with_train_mean(self):
        train, test = _tables()
        X_train, X_test = featurize_split(
            train, test, {"num": FeatureType.NUMERIC}
        )
        assert X_train.shape == (4, 1)
        assert X_train[3, 0] == pytest.approx(2.0)  # mean of 1,2,3
        assert X_test[1, 0] == pytest.approx(2.0)  # unparseable -> fill

    def test_onehot_ignores_unseen(self):
        train, test = _tables()
        _X_train, X_test = featurize_split(
            train, test, {"cat": FeatureType.CATEGORICAL}
        )
        assert X_test[1].sum() == 0.0  # "zz" unseen

    def test_ng_dropped(self):
        train, test = _tables()
        X_train, _ = featurize_split(
            train, test,
            {"num": FeatureType.NUMERIC, "key": FeatureType.NOT_GENERALIZABLE},
        )
        assert X_train.shape[1] == 1

    def test_none_assignment_drops(self):
        train, test = _tables()
        X_train, _ = featurize_split(
            train, test, {"num": FeatureType.NUMERIC, "cat": None}
        )
        assert X_train.shape[1] == 1

    def test_everything_dropped_yields_constant(self):
        train, test = _tables()
        X_train, X_test = featurize_split(train, test, {})
        assert X_train.shape == (4, 1)
        assert X_test.shape == (2, 1)

    def test_tfidf_and_bigrams_have_width(self):
        train, test = _tables()
        X_train, _ = featurize_split(
            train, test,
            {"text": FeatureType.SENTENCE, "cat": FeatureType.CONTEXT_SPECIFIC},
        )
        assert X_train.shape[1] > 10

    def test_double_representation_combines_blocks(self):
        train, test = _tables()
        exclusive, _ = featurize_split(
            train, test, {"num": FeatureType.NUMERIC}
        )
        doubled, _ = featurize_split(
            train, test,
            {"num": Representation(FeatureType.NUMERIC, double=True)},
        )
        assert doubled.shape[1] > exclusive.shape[1]

    def test_single_representation_object(self):
        train, test = _tables()
        X_train, _ = featurize_split(
            train, test,
            {"num": Representation(FeatureType.NUMERIC, double=False)},
        )
        assert X_train.shape[1] == 1


class TestHarness:
    def test_bad_model_kind(self):
        dataset = make_dataset(SPEC_BY_NAME["MBA"], seed=0)
        with pytest.raises(ValueError, match="model_kind"):
            evaluate_assignment(dataset, truth_assignments(dataset), "boom")

    def test_classification_score_in_range(self):
        dataset = make_dataset(SPEC_BY_NAME["Hayes"], seed=0)
        score = evaluate_assignment(
            dataset, truth_assignments(dataset), "linear", seed=0
        )
        assert 0.0 <= score.value <= 100.0
        assert score.higher_is_better

    def test_regression_score_rmse(self):
        dataset = make_dataset(SPEC_BY_NAME["MBA"], seed=0)
        score = evaluate_assignment(
            dataset, truth_assignments(dataset), "forest", seed=0
        )
        assert score.value >= 0.0
        assert not score.higher_is_better

    def test_delta_vs_sign_conventions(self):
        better_cls = DownstreamScore("d", "linear", 90.0, True)
        worse_cls = DownstreamScore("d", "linear", 80.0, True)
        assert better_cls.delta_vs(worse_cls) == pytest.approx(10.0)
        better_reg = DownstreamScore("d", "linear", 1.0, False)
        worse_reg = DownstreamScore("d", "linear", 2.0, False)
        assert better_reg.delta_vs(worse_reg) == pytest.approx(1.0)

    def test_delta_vs_mixed_metrics_raises(self):
        a = DownstreamScore("d", "linear", 1.0, True)
        b = DownstreamScore("d", "linear", 1.0, False)
        with pytest.raises(ValueError):
            a.delta_vs(b)


class TestSuite:
    def test_run_suite_and_compare(self):
        from repro.tools import TFDVTool

        datasets = [
            make_dataset(SPEC_BY_NAME[name], seed=i)
            for i, name in enumerate(("Hayes", "MBA"))
        ]
        tool = TFDVTool()
        result = run_suite(
            datasets,
            {
                "truth": truth_assignments,
                "tfdv": lambda ds: tool_assignments(ds, tool),
            },
            model_kinds=("linear",),
        )
        comparisons = compare_to_truth(result, ["tfdv"], "linear")
        assert len(comparisons) == 1
        row = comparisons[0]
        assert row.underperform + row.match + row.outperform == 2
        # integer categoricals misrouted to numeric must hurt Hayes
        assert result.delta_vs_truth("tfdv", "linear", "Hayes") < 0

    def test_suite_requires_truth(self):
        with pytest.raises(ValueError, match="truth"):
            run_suite([], {"x": truth_assignments})
