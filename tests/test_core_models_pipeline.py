"""Tests for the type-inference model wrappers, pipeline, and NewRF."""

import numpy as np
import pytest

from repro.core.models import (
    CNNModel,
    KNNModel,
    LogRegModel,
    PAPER_GRIDS,
    RandomForestModel,
    SVMModel,
)
from repro.core.newrf import NewRF, Representation
from repro.core.pipeline import TypeInferencePipeline
from repro.datagen.corpus import generate_corpus
from repro.ml.model_selection import train_test_split
from repro.tabular.csv_io import to_csv_text
from repro.types import ALL_FEATURE_TYPES, FeatureType


@pytest.fixture(scope="module")
def split():
    corpus = generate_corpus(n_examples=400, seed=11)
    labels = [label.value for label in corpus.dataset.labels]
    idx = np.arange(len(corpus.dataset))
    train_idx, test_idx = train_test_split(
        idx, test_size=0.25, random_state=0, stratify=labels
    )
    return corpus, corpus.dataset.subset(train_idx), corpus.dataset.subset(test_idx)


@pytest.fixture(scope="module")
def fitted_rf(split):
    _corpus, train, _test = split
    return RandomForestModel(n_estimators=15, random_state=0).fit(train)


class TestClassicalModels:
    def test_rf_beats_chance_by_far(self, split, fitted_rf):
        _corpus, _train, test = split
        assert fitted_rf.score(test) > 0.8

    def test_logreg(self, split):
        _corpus, train, test = split
        model = LogRegModel().fit(train)
        assert model.score(test) > 0.7

    def test_svm(self, split):
        _corpus, train, test = split
        model = SVMModel(max_landmarks=200).fit(train)
        assert model.score(test) > 0.7

    def test_knn(self, split):
        _corpus, train, test = split
        model = KNNModel(n_neighbors=3).fit(train)
        assert model.score(test) > 0.7

    def test_cnn_runs(self, split):
        _corpus, train, test = split
        model = CNNModel(epochs=3, hidden_units=32, num_filters=8,
                         embed_dim=8).fit(train)
        assert model.score(test) > 0.4  # few epochs: just well above chance

    def test_predict_proba_shape(self, split, fitted_rf):
        _corpus, _train, test = split
        probs = fitted_rf.predict_proba(test.profiles)
        assert probs.shape == (len(test), len(fitted_rf.classes_))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predictions_are_feature_types(self, split, fitted_rf):
        _corpus, _train, test = split
        for prediction in fitted_rf.predict(test.profiles):
            assert prediction in ALL_FEATURE_TYPES

    def test_paper_grids_present(self):
        assert set(PAPER_GRIDS) == {"logreg", "svm", "rf", "knn", "cnn"}
        assert PAPER_GRIDS["rf"]["n_estimators"] == [5, 25, 50, 75, 100]


class TestPipeline:
    def test_csv_text_roundtrip(self, split, fitted_rf):
        corpus, _train, _test = split
        pipeline = TypeInferencePipeline(fitted_rf)
        table = corpus.files[0]
        predictions = pipeline.predict_csv_text(to_csv_text(table))
        assert len(predictions) == table.n_columns
        for prediction in predictions:
            assert prediction.feature_type in ALL_FEATURE_TYPES
            assert 0.0 <= prediction.confidence <= 1.0

    def test_csv_file(self, split, fitted_rf, tmp_path):
        corpus, _train, _test = split
        from repro.tabular.csv_io import write_csv

        path = tmp_path / "data.csv"
        write_csv(corpus.files[1], path)
        pipeline = TypeInferencePipeline(fitted_rf)
        predictions = pipeline.predict_csv(path)
        assert [p.column for p in predictions] == corpus.files[1].column_names

    def test_review_queue_flags_cs_and_low_confidence(self, split, fitted_rf):
        corpus, _train, _test = split
        pipeline = TypeInferencePipeline(fitted_rf)
        queue = pipeline.review_queue(corpus.files[0])
        for item in queue:
            assert item.needs_review


class TestNewRF:
    def test_threshold_validation(self, fitted_rf):
        with pytest.raises(ValueError):
            NewRF(fitted_rf, threshold=0.0)

    def test_high_threshold_doubles_integer_columns(self, split, fitted_rf):
        _corpus, _train, test = split
        newrf = NewRF(fitted_rf, threshold=1.0)  # everything is "unsure"
        reps = newrf.predict(test.profiles)
        assert len(reps) == len(test)
        doubled = [r for r in reps if r.double]
        # integer NU/CA columns exist in the corpus, so some must double
        assert doubled
        for rep in doubled:
            assert rep.as_numeric and rep.as_categorical

    def test_low_threshold_never_doubles(self, split, fitted_rf):
        _corpus, _train, test = split
        newrf = NewRF(fitted_rf, threshold=1e-9)
        assert not any(r.double for r in newrf.predict(test.profiles))

    def test_representation_flags(self):
        rep = Representation(FeatureType.NUMERIC, double=False)
        assert rep.as_numeric and not rep.as_categorical
        both = Representation(FeatureType.CATEGORICAL, double=True)
        assert both.as_numeric and both.as_categorical
