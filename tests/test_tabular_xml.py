"""Tests for XML ingestion."""

import pytest

from repro.tabular.xml_io import read_xml, read_xml_text


class TestXml:
    def test_element_cells(self):
        table = read_xml_text(
            "<rows><row><a>1</a><b>x</b></row><row><a>2</a><b>y</b></row></rows>"
        )
        assert table.column_names == ["a", "b"]
        assert table["a"].cells == ["1", "2"]

    def test_attribute_cells(self):
        table = read_xml_text('<rows><row a="1" b="x"/><row a="2"/></rows>')
        assert table["a"].cells == ["1", "2"]
        assert table["b"].cells == ["x", None]

    def test_mixed_attributes_and_elements(self):
        table = read_xml_text('<r><row id="7"><name>alice</name></row></r>')
        assert table.column_names == ["id", "name"]

    def test_majority_tag_selection(self):
        text = (
            "<root><meta>ignored</meta>"
            "<item><v>1</v></item><item><v>2</v></item></root>"
        )
        table = read_xml_text(text)
        assert table["v"].cells == ["1", "2"]

    def test_explicit_record_tag(self):
        text = "<root><meta><v>0</v></meta><item><v>1</v></item></root>"
        table = read_xml_text(text, record_tag="item")
        assert table["v"].cells == ["1"]

    def test_nested_structure_becomes_blob(self):
        table = read_xml_text(
            "<rows><row><meta><k>1</k></meta></row></rows>"
        )
        assert "<k>1</k>" in table["meta"].cells[0]

    def test_empty_cell_is_missing(self):
        table = read_xml_text("<rows><row><a></a><b>x</b></row></rows>")
        assert table["a"].cells == [None]

    def test_invalid_xml(self):
        with pytest.raises(ValueError, match="invalid XML"):
            read_xml_text("<unclosed>")

    def test_no_rows(self):
        with pytest.raises(ValueError, match="no row elements"):
            read_xml_text("<rows/>")

    def test_rows_without_columns(self):
        with pytest.raises(ValueError, match="no children"):
            read_xml_text("<rows><row/><row/></rows>")

    def test_file(self, tmp_path):
        path = tmp_path / "data.xml"
        path.write_text("<rows><row><a>1</a></row></rows>", encoding="utf-8")
        table = read_xml(path)
        assert table.name == "data"

    def test_xml_feeds_the_pipeline(self):
        from repro.core.featurize import profile_table

        table = read_xml_text(
            "<rows>"
            "<row><salary>1200.5</salary><zip>92092</zip></row>"
            "<row><salary>900.25</salary><zip>78712</zip></row>"
            "</rows>"
        )
        profiles = profile_table(table)
        assert profiles[0].stats["numeric_fraction"] == 1.0
