"""Smoke tests for the repro-bench CLI runner."""

import json

import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.runner import EXPERIMENTS, main, run_experiment
from repro.obs import telemetry


def test_registry_covers_every_paper_artifact():
    expected = {
        "table1", "table2", "table3", "downstream", "table7", "table11",
        "table12", "table14", "table15", "figure9", "table17", "table18",
        "figure7", "labeling", "tuning", "leaderboard",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_raises(small_context):
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("table99", small_context)


def test_run_cheap_experiments(small_context):
    # table18 needs no model fits; labeling trains one small forest
    out = run_experiment("table18", small_context)
    assert "by class" in out
    out = run_experiment("labeling", small_context)
    assert "5-fold CV accuracy" in out


def test_cli_main_runs_one_experiment(capsys):
    exit_code = main(["table18", "--scale", "300", "--seed", "1"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "table18" in captured.out
    assert "by class" in captured.out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_cli_observability_flags_write_manifest_and_metrics(tmp_path, capsys):
    manifest_path = tmp_path / "run.json"
    metrics_path = tmp_path / "metrics.json"
    try:
        exit_code = main(
            [
                "table18", "--scale", "300", "--seed", "1",
                "--manifest", str(manifest_path),
                "--metrics-out", str(metrics_path),
            ]
        )
    finally:
        telemetry.disable().reset()
    assert exit_code == 0
    assert "by class" in capsys.readouterr().out

    manifest = json.loads(manifest_path.read_text())
    assert manifest["command"] == "repro-bench"
    assert manifest["seed"] == 1 and manifest["scale"] == 300
    assert [e["name"] for e in manifest["experiments"]] == ["table18"]
    assert manifest["experiments"][0]["wall_s"] > 0
    # per-stage spans from the instrumented library code
    assert manifest["spans"]["context.corpus"]["count"] == 1
    assert manifest["spans"]["featurize.column"]["count"] > 0
    assert manifest["metrics"]["counters"]["featurize.columns"] > 0

    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["featurize.columns"] > 0


def test_cli_without_obs_flags_keeps_telemetry_disabled(capsys, tmp_path):
    exit_code = main(["table18", "--scale", "300", "--seed", "1"])
    assert exit_code == 0
    assert telemetry.enabled is False
    assert len(telemetry.spans) == 0
    assert len(telemetry.metrics) == 0
