"""Smoke tests for the repro-bench CLI runner."""

import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.runner import EXPERIMENTS, main, run_experiment


def test_registry_covers_every_paper_artifact():
    expected = {
        "table1", "table2", "table3", "downstream", "table7", "table11",
        "table12", "table14", "table15", "figure9", "table17", "table18",
        "figure7", "labeling", "leaderboard",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_raises(small_context):
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("table99", small_context)


def test_run_cheap_experiments(small_context):
    # table18 needs no model fits; labeling trains one small forest
    out = run_experiment("table18", small_context)
    assert "by class" in out
    out = run_experiment("labeling", small_context)
    assert "5-fold CV accuracy" in out


def test_cli_main_runs_one_experiment(capsys):
    exit_code = main(["table18", "--scale", "300", "--seed", "1"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "table18" in captured.out
    assert "by class" in captured.out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["tableX"])
