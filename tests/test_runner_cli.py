"""Smoke tests for the repro-bench CLI runner."""

import json

import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.runner import EXPERIMENTS, main, run_experiment
from repro.obs import telemetry


def test_registry_covers_every_paper_artifact():
    expected = {
        "table1", "table2", "table3", "downstream", "table7", "table11",
        "table12", "table14", "table15", "figure9", "table17", "table18",
        "figure7", "labeling", "tuning", "leaderboard",
    }
    assert set(EXPERIMENTS) == expected


def test_unknown_experiment_raises(small_context):
    with pytest.raises(ValueError, match="unknown experiment"):
        run_experiment("table99", small_context)


def test_run_cheap_experiments(small_context):
    # table18 needs no model fits; labeling trains one small forest
    out = run_experiment("table18", small_context)
    assert "by class" in out
    out = run_experiment("labeling", small_context)
    assert "5-fold CV accuracy" in out


def test_cli_main_runs_one_experiment(capsys):
    exit_code = main(["table18", "--scale", "300", "--seed", "1"])
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "table18" in captured.out
    assert "by class" in captured.out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["tableX"])


def test_cli_observability_flags_write_manifest_and_metrics(tmp_path, capsys):
    manifest_path = tmp_path / "run.json"
    metrics_path = tmp_path / "metrics.json"
    try:
        exit_code = main(
            [
                "table18", "--scale", "300", "--seed", "1",
                "--manifest", str(manifest_path),
                "--metrics-out", str(metrics_path),
            ]
        )
    finally:
        telemetry.disable().reset()
    assert exit_code == 0
    assert "by class" in capsys.readouterr().out

    manifest = json.loads(manifest_path.read_text())
    assert manifest["command"] == "repro-bench"
    assert manifest["seed"] == 1 and manifest["scale"] == 300
    assert [e["name"] for e in manifest["experiments"]] == ["table18"]
    assert manifest["experiments"][0]["wall_s"] > 0
    # per-stage spans from the instrumented library code
    assert manifest["spans"]["context.corpus"]["count"] == 1
    assert manifest["spans"]["featurize.column"]["count"] > 0
    assert manifest["metrics"]["counters"]["featurize.columns"] > 0

    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["featurize.columns"] > 0


def test_cli_without_obs_flags_keeps_telemetry_disabled(capsys, tmp_path):
    exit_code = main(["table18", "--scale", "300", "--seed", "1"])
    assert exit_code == 0
    assert telemetry.enabled is False
    assert len(telemetry.spans) == 0
    assert len(telemetry.metrics) == 0


def test_jobs2_worker_spans_merge_under_one_trace(tmp_path, capsys):
    """Forked --jobs workers inherit the run's trace context; their spans
    come back over the result pipe and land in the manifest and the
    --trace-out export under a single trace_id."""
    manifest_path = tmp_path / "run.json"
    trace_path = tmp_path / "spans.jsonl"
    try:
        exit_code = main(
            [
                "table18,labeling", "--scale", "300", "--seed", "1",
                "--jobs", "2",
                "--manifest", str(manifest_path),
                "--trace-out", str(trace_path),
            ]
        )
    finally:
        telemetry.disable().reset()
    assert exit_code == 0
    capsys.readouterr()

    manifest = json.loads(manifest_path.read_text())
    trace_id = manifest["trace_id"]
    assert trace_id and len(trace_id) == 32
    assert manifest["spans_dropped"] == 0

    from repro.obs.export import read_jsonl

    records = list(read_jsonl(trace_path))
    tasks = [r for r in records if r["name"] == "parallel.task"]
    assert {r["attrs"]["experiment"] for r in tasks} == {"table18", "labeling"}
    # Every span that carries a trace id carries the run's: both forked
    # workers joined the parent's trace instead of starting their own.
    traced = [r for r in records if r.get("trace_id")]
    assert traced
    assert {r["trace_id"] for r in traced} == {trace_id}

    # Per-worker JSONL exports (crash-surviving) landed next to --trace-out
    # and hold the same trace.
    worker_dir = tmp_path / "spans.jsonl.workers"
    worker_files = sorted(worker_dir.glob("*.jsonl"))
    assert len(worker_files) == 2
    for path in worker_files:
        worker_records = list(read_jsonl(path))
        assert worker_records
        assert {r["trace_id"] for r in worker_records} == {trace_id}


def test_sequential_rerun_does_not_reuse_previous_trace(tmp_path, capsys):
    """Two in-process runs mint distinct run traces (no env/context leak)."""
    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    try:
        assert main(["table18", "--scale", "300", "--seed", "1",
                     "--manifest", str(first)]) == 0
        telemetry.disable().reset()
        assert main(["table18", "--scale", "300", "--seed", "1",
                     "--manifest", str(second)]) == 0
    finally:
        telemetry.disable().reset()
    capsys.readouterr()
    trace_a = json.loads(first.read_text())["trace_id"]
    trace_b = json.loads(second.read_text())["trace_id"]
    assert trace_a and trace_b
    assert trace_a != trace_b
