"""Tests for the Sherlock simulator (semantic types, mapping, model)."""

import pytest

from repro.core.featurize import profile_column
from repro.tabular.column import Column
from repro.tools.sherlock import (
    BY_NAME,
    SEMANTIC_TYPES,
    SherlockModel,
    SherlockTool,
    generate_sherlock_training_data,
    mapping_summary,
    resolve_feature_type,
    sample_columns_of_type,
    types_mapped_to,
)
from repro.types import FeatureType


class TestSemanticTypes:
    def test_78_types(self):
        assert len(SEMANTIC_TYPES) == 78
        assert len(BY_NAME) == 78

    def test_mapping_summary_shape_matches_paper(self):
        # paper: 55 unique, 18 double, 3 triple, 2 quadruple (we are within 1)
        summary = mapping_summary()
        assert summary[1] in (55, 56)
        assert summary.get(2, 0) in (17, 18)
        assert summary.get(3, 0) == 3
        assert summary.get(4, 0) == 2

    def test_categorical_dominates_mappings(self):
        # paper: 50 of 78 semantic types map to Categorical
        assert len(types_mapped_to(FeatureType.CATEGORICAL)) >= 40

    def test_every_type_has_a_style_and_primary_label(self):
        for semantic_type in SEMANTIC_TYPES:
            assert semantic_type.labels
            assert semantic_type.style


class TestMappingResolution:
    def test_unique_mapping_passthrough(self):
        profile = profile_column(Column("notes", ["some text here"] * 5))
        assert (
            resolve_feature_type(BY_NAME["description"], profile)
            is FeatureType.SENTENCE
        )

    def test_small_domain_resolves_categorical(self):
        profile = profile_column(Column("age", ["1", "2", "3"] * 20))
        assert (
            resolve_feature_type(BY_NAME["age"], profile)
            is FeatureType.CATEGORICAL
        )

    def test_castable_resolves_numeric(self):
        profile = profile_column(Column("age", [str(i) for i in range(60)]))
        assert resolve_feature_type(BY_NAME["age"], profile) is FeatureType.NUMERIC

    def test_embedded_resolves_en(self):
        profile = profile_column(
            Column("age", [f"{i}M" for i in range(10, 60)])
        )
        assert (
            resolve_feature_type(BY_NAME["age"], profile)
            is FeatureType.EMBEDDED_NUMBER
        )

    def test_year_dates_resolve_datetime(self):
        # a wide domain of mon-year values escapes the small-domain rule and
        # falls through to the timestamp check
        months = "Jan Feb Mar Apr May Jun Jul Aug Sep Oct Nov Dec".split()
        values = [f"{m}-{y:02d}" for m in months for y in range(5, 9)]
        profile = profile_column(Column("year", values))
        assert (
            resolve_feature_type(BY_NAME["year"], profile) is FeatureType.DATETIME
        )

    def test_year_small_domain_resolves_categorical(self):
        profile = profile_column(Column("year", ["May-07", "Jun-08", "Jul-09"] * 9))
        assert (
            resolve_feature_type(BY_NAME["year"], profile)
            is FeatureType.CATEGORICAL
        )


class TestGenerator:
    def test_training_data_covers_all_types(self):
        dataset, labels = generate_sherlock_training_data(per_type=2, seed=0)
        assert len(dataset) == 78 * 2
        assert set(labels) == {st.name for st in SEMANTIC_TYPES}

    def test_sample_columns_of_type(self):
        columns = sample_columns_of_type("country", 5, seed=1)
        assert len(columns) == 5
        from repro.datagen import lexicon

        for profile in columns:
            assert all(s in lexicon.COUNTRIES for s in profile.samples)


@pytest.mark.slow
class TestSherlockEndToEnd:
    def test_model_and_tool(self):
        model = SherlockModel(per_type=6, n_estimators=10, seed=0).fit()
        tool = SherlockTool(model)
        profile = profile_column(
            Column("gender", ["Male", "Female"] * 20)
        )
        prediction = tool.infer_profile(profile)
        assert prediction in FeatureType

    def test_unfitted_model_raises(self):
        model = SherlockModel()
        with pytest.raises(RuntimeError, match="not fitted"):
            model.predict([])
