"""Tests for the markdown report generator."""

from repro.benchmark.report import build_report, main


def test_build_report_sections(small_context):
    report = build_report(small_context, experiments=("table18", "labeling"))
    assert report.startswith("# Benchmark report")
    assert "## table18" in report
    assert "## labeling" in report
    assert "```" in report


def test_report_cli_writes_file(tmp_path, capsys):
    out = tmp_path / "REPORT.md"
    code = main(
        ["--out", str(out), "--scale", "300", "--experiments", "table18"]
    )
    assert code == 0
    assert out.exists()
    assert "table18" in out.read_text()
