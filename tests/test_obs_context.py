"""Trace-context propagation, rolling windows, and Prometheus exposition."""

from __future__ import annotations

import os
import threading

import pytest

from repro.obs import Telemetry, telemetry
from repro.obs.context import (
    TRACEPARENT_ENV,
    TraceContext,
    current_context,
    set_process_context,
    span_context,
    use_context,
)
from repro.obs.metrics import (
    MetricsRegistry,
    RollingHistogram,
    parse_prometheus_text,
    prometheus_name,
    render_prometheus,
)
from repro.obs.trace import SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_context(monkeypatch):
    monkeypatch.delenv(TRACEPARENT_ENV, raising=False)
    set_process_context(None, export_env=False)
    yield
    set_process_context(None, export_env=False)


class TestTraceparent:
    def test_round_trip(self):
        context = TraceContext.generate()
        parsed = TraceContext.from_traceparent(context.to_traceparent())
        assert parsed == context
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16

    def test_wire_format(self):
        context = TraceContext("ab" * 16, "cd" * 8)
        assert context.to_traceparent() == f"00-{'ab' * 16}-{'cd' * 8}-01"

    @pytest.mark.parametrize("header", [
        None,
        "",
        "garbage",
        "00-zzzz-1234567890abcdef-01",          # non-hex trace id
        "00-" + "a" * 31 + "-" + "b" * 16 + "-01",  # short trace id
        "00-" + "0" * 32 + "-" + "b" * 16 + "-01",  # all-zero trace id
        "00-" + "a" * 32 + "-" + "0" * 16 + "-01",  # all-zero span id
        "00-" + "a" * 32 + "-" + "b" * 16,          # missing flags
    ])
    def test_malformed_headers_are_dropped(self, header):
        assert TraceContext.from_traceparent(header) is None

    def test_case_and_whitespace_tolerated(self):
        context = TraceContext("ab" * 16, "cd" * 8)
        header = "  " + context.to_traceparent().upper() + " "
        assert TraceContext.from_traceparent(header) == context

    def test_child_keeps_trace_id(self):
        context = TraceContext.generate()
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id


class TestAmbientContext:
    def test_use_context_is_thread_local(self):
        context = TraceContext.generate()
        seen: dict = {}

        def other_thread():
            seen["other"] = current_context()

        with use_context(context):
            assert current_context() == context
            thread = threading.Thread(target=other_thread)
            thread.start()
            thread.join()
        assert seen["other"] is None
        assert current_context() is None

    def test_process_context_exports_env(self):
        context = TraceContext.generate()
        set_process_context(context)
        assert os.environ[TRACEPARENT_ENV] == context.to_traceparent()
        assert current_context() == context
        set_process_context(None)
        assert TRACEPARENT_ENV not in os.environ

    def test_env_context_is_read_lazily(self, monkeypatch):
        context = TraceContext.generate()
        monkeypatch.setenv(TRACEPARENT_ENV, context.to_traceparent())
        import repro.obs.context as ctx_module
        monkeypatch.setattr(ctx_module, "_env_checked", False)
        monkeypatch.setattr(ctx_module, "_process_context", None)
        assert current_context() == context

    def test_root_span_adopts_ambient_context(self):
        t = Telemetry().enable()
        remote = TraceContext.generate()
        with use_context(remote):
            with t.span("handler"):
                with t.span("inner"):
                    pass
        handler = next(s for s in t.spans if s.name == "handler")
        inner = next(s for s in t.spans if s.name == "inner")
        assert handler.trace_id == remote.trace_id
        assert handler.parent_span_id == remote.span_id
        assert inner.trace_id == remote.trace_id
        assert inner.parent_span_id == handler.span_id

    def test_root_span_without_context_mints_fresh_trace(self):
        t = Telemetry().enable()
        with t.span("a"):
            pass
        with t.span("b"):
            pass
        a, b = t.spans
        assert a.trace_id and b.trace_id
        assert a.trace_id != b.trace_id
        assert a.parent_span_id is None

    def test_span_context_of_noop_span_is_none(self):
        t = Telemetry()  # disabled
        span = t.span("nope")
        assert span_context(span) is None

    def test_span_context_of_open_span(self):
        t = Telemetry().enable()
        with t.span("open") as span:
            context = span_context(span)
            assert context is not None
            assert context.span_id == span.span_id
            assert context.trace_id == span.trace_id


class TestTracerDrops:
    def test_on_drop_fires_past_the_cap(self):
        drops: list[int] = []
        tracer = Tracer(max_records=2, on_drop=drops.append)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert len(tracer.records) == 2
        assert tracer.dropped == 3
        assert drops == [1, 1, 1]

    def test_telemetry_counts_dropped_spans(self):
        t = Telemetry()
        t.tracer.max_records = 1
        t.enable()
        with t.span("kept"):
            pass
        with t.span("dropped"):
            pass
        assert t.metrics.counter("trace.dropped").value == 1
        assert t.tracer.dropped == 1

    def test_record_external_synthesizes_span(self):
        t = Telemetry().enable()
        record = t.record_span(
            "queue.wait", started_at=123.0, wall_s=0.25,
            trace_id="ab" * 16, parent_span_id="cd" * 8, table="t1",
        )
        assert record is not None
        assert record.span_id
        assert record.trace_id == "ab" * 16
        assert record.parent_span_id == "cd" * 8
        assert t.spans[-1].name == "queue.wait"
        assert t.spans[-1].attrs == {"table": "t1"}

    def test_ingest_adopts_foreign_records(self):
        tracer = Tracer()
        foreign = SpanRecord.from_dict(
            {"name": "w", "started_at": 1.0, "wall_s": 0.5, "cpu_s": 0.1,
             "depth": 0, "parent": None, "trace_id": "ab" * 16,
             "span_id": "cd" * 8}
        )
        assert tracer.ingest([foreign]) == 1
        assert tracer.records[0].trace_id == "ab" * 16

    def test_ingest_honors_cap(self):
        drops: list[int] = []
        tracer = Tracer(max_records=1, on_drop=drops.append)
        records = [
            SpanRecord(name=f"s{i}", started_at=0.0, wall_s=0.0, cpu_s=0.0,
                       depth=0, parent=None)
            for i in range(3)
        ]
        assert tracer.ingest(records) == 1
        assert tracer.dropped == 2
        assert drops == [2]


class TestRollingHistogram:
    def test_window_forgets_old_samples(self):
        window = RollingHistogram("lat", window_s=10.0)
        window.observe(100.0, now=0.0)
        window.observe(200.0, now=5.0)
        summary = window.summary(now=6.0)
        assert summary["count"] == 2
        assert summary["max"] == 200.0
        # 100.0 (t=0) has left the 10s window by t=11.
        summary = window.summary(now=11.0)
        assert summary["count"] == 1
        assert summary["min"] == summary["max"] == 200.0
        # Lifetime totals survive the pruning.
        assert summary["total_count"] == 2
        assert summary["total_sum"] == 300.0

    def test_quantiles_over_window_only(self):
        window = RollingHistogram("lat", window_s=10.0)
        for value in range(100):
            window.observe(1000.0, now=0.0)  # ancient outliers
        for value in (1.0, 2.0, 3.0, 4.0):
            window.observe(value, now=20.0)
        summary = window.summary(now=21.0)
        assert summary["count"] == 4
        assert summary["p99"] <= 4.0

    def test_registry_snapshot_includes_windows(self):
        registry = MetricsRegistry()
        registry.window("serve.lat", window_s=30.0).observe(5.0)
        snapshot = registry.snapshot()
        assert "serve.lat" in snapshot["windows"]
        assert snapshot["windows"]["serve.lat"]["window_s"] == 30.0
        assert snapshot["windows"]["serve.lat"]["count"] == 1


class TestPrometheusExposition:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("serve.request").inc(3)
        registry.gauge("serve.queue_depth").set(2)
        for value in (1.0, 2.0, 3.0):
            registry.histogram("serve.batch_size").observe(value)
            registry.window("serve.request_ms_window").observe(value)
        return registry.snapshot()

    def test_name_sanitization(self):
        assert prometheus_name("serve.request") == "repro_serve_request"
        assert prometheus_name("a-b c/d") == "repro_a_b_c_d"

    def test_render_and_parse_round_trip(self):
        text = render_prometheus(self._snapshot())
        families = parse_prometheus_text(text)
        counter = families["repro_serve_request_total"]
        assert counter["type"] == "counter"
        assert counter["samples"]["repro_serve_request_total"] == 3.0
        gauge = families["repro_serve_queue_depth"]
        assert gauge["samples"]["repro_serve_queue_depth"] == 2.0
        histogram = families["repro_serve_batch_size"]
        assert histogram["type"] == "summary"
        assert histogram["samples"]["repro_serve_batch_size_count"] == 3.0
        assert histogram["samples"]["repro_serve_batch_size_sum"] == 6.0
        assert any("quantile" in key for key in histogram["samples"])
        window = families["repro_serve_request_ms_window_window"]
        assert window["type"] == "summary"
        assert any("window_s" in key for key in window["samples"])

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not prometheus\n")

    def test_parser_rejects_bad_value(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_name one_point_five\n")


class TestSingletonFacade:
    def test_observe_window_gated_on_enabled(self):
        was_enabled = telemetry.enabled
        telemetry.disable()
        try:
            telemetry.observe_window("x", 1.0)
            assert len(telemetry.metrics) == 0
        finally:
            if was_enabled:
                telemetry.enable()
