"""Tests for the nested-CV tuning utilities."""

import pytest

from repro.core.tuning import TuningResult, fit_tuned, tune_classical_model, tune_knn
from repro.datagen.corpus import generate_corpus


@pytest.fixture(scope="module")
def tuning_dataset():
    return generate_corpus(n_examples=200, seed=17).dataset


def test_tune_logreg_small_grid(tuning_dataset):
    result = tune_classical_model(
        "logreg",
        tuning_dataset,
        param_grid={"C": [0.1, 10.0]},
        n_folds=3,
    )
    assert result.model_name == "logreg"
    assert result.best_params["C"] in (0.1, 10.0)
    assert len(result.fold_scores) == 3
    assert 0.3 < result.mean_score <= 1.0


def test_tune_rf_small_grid(tuning_dataset):
    result = tune_classical_model(
        "rf",
        tuning_dataset,
        param_grid={"n_estimators": [5], "max_depth": [10]},
        n_folds=2,
    )
    assert result.best_params == {"n_estimators": 5, "max_depth": 10}
    assert result.mean_score > 0.6


def test_tune_unknown_model(tuning_dataset):
    with pytest.raises(ValueError, match="unknown classical model"):
        tune_classical_model("xgboost", tuning_dataset)


def test_tune_knn(tuning_dataset):
    result = tune_knn(
        tuning_dataset, n_neighbors_grid=(1, 5), gamma_grid=(0.1, 1.0)
    )
    assert set(result.best_params) == {"n_neighbors", "gamma"}
    assert 0.3 < result.mean_score <= 1.0


def test_fit_tuned_roundtrip(tuning_dataset):
    result = TuningResult("rf", {"n_estimators": 5, "max_depth": 10}, [0.9])
    model = fit_tuned(result, tuning_dataset)
    assert model.score(tuning_dataset) > 0.7


def test_fit_tuned_knn(tuning_dataset):
    result = TuningResult("knn", {"n_neighbors": 3, "gamma": 1.0}, [0.9])
    model = fit_tuned(result, tuning_dataset)
    assert model.score(tuning_dataset) > 0.6


def test_fit_tuned_unknown():
    result = TuningResult("mystery", {}, [0.0])
    with pytest.raises(ValueError, match="unknown model"):
        fit_tuned(result, None)
