"""Tests for the nested-CV tuning utilities and the cache-aware grid search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import ArtifactCache, set_active_cache
from repro.core.tuning import (
    TuningResult,
    fit_tuned,
    matrix_digest,
    reduce_tuning_folds,
    tune_classical_fold,
    tune_classical_model,
    tune_knn,
    tuning_cache_key,
)
from repro.datagen.corpus import generate_corpus
from repro.obs import telemetry


@pytest.fixture(scope="module")
def tuning_dataset():
    return generate_corpus(n_examples=200, seed=17).dataset


def test_tune_logreg_small_grid(tuning_dataset):
    result = tune_classical_model(
        "logreg",
        tuning_dataset,
        param_grid={"C": [0.1, 10.0]},
        n_folds=3,
    )
    assert result.model_name == "logreg"
    assert result.best_params["C"] in (0.1, 10.0)
    assert len(result.fold_scores) == 3
    assert 0.3 < result.mean_score <= 1.0


def test_tune_rf_small_grid(tuning_dataset):
    result = tune_classical_model(
        "rf",
        tuning_dataset,
        param_grid={"n_estimators": [5], "max_depth": [10]},
        n_folds=2,
    )
    assert result.best_params == {"n_estimators": 5, "max_depth": 10}
    assert result.mean_score > 0.6


def test_tune_unknown_model(tuning_dataset):
    with pytest.raises(ValueError, match="unknown classical model"):
        tune_classical_model("xgboost", tuning_dataset)


def test_tune_knn(tuning_dataset):
    result = tune_knn(
        tuning_dataset, n_neighbors_grid=(1, 5), gamma_grid=(0.1, 1.0)
    )
    assert set(result.best_params) == {"n_neighbors", "gamma"}
    assert 0.3 < result.mean_score <= 1.0


def test_fit_tuned_roundtrip(tuning_dataset):
    result = TuningResult("rf", {"n_estimators": 5, "max_depth": 10}, [0.9])
    model = fit_tuned(result, tuning_dataset)
    assert model.score(tuning_dataset) > 0.7


def test_fit_tuned_knn(tuning_dataset):
    result = TuningResult("knn", {"n_neighbors": 3, "gamma": 1.0}, [0.9])
    model = fit_tuned(result, tuning_dataset)
    assert model.score(tuning_dataset) > 0.6


def test_fit_tuned_unknown():
    result = TuningResult("mystery", {}, [0.0])
    with pytest.raises(ValueError, match="unknown model"):
        fit_tuned(result, None)


# ---------------------------------------------------------------------------
# Cache-aware grid search: key properties and cached == uncached parity
# ---------------------------------------------------------------------------


def _problem(seed: int, n: int = 12, d: int = 3):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = [int(v) for v in rng.integers(0, 2, size=n)]
    return X, y


def _key(default_digest, **overrides):
    # The positional name must differ from the "digest" kwarg so callers can
    # override the digest via **overrides without a duplicate-argument error.
    base = dict(
        digest=default_digest, model_name="logreg", fold_index=0, n_folds=3,
        random_state=0, params={"C": 1.0},
    )
    base.update(overrides)
    role = base.pop("role", "candidate")
    return tuning_cache_key(role, **base)


class TestTuningCacheKey:
    @given(seed=st.integers(0, 10**6), n=st.integers(6, 40),
           d=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_same_data_same_digest(self, seed, n, d):
        X, y = _problem(seed, n, d)
        assert matrix_digest(X, y) == matrix_digest(X.copy(), list(y))

    @given(seed=st.integers(0, 10**6), n=st.integers(6, 40),
           d=st.integers(1, 8), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_perturbed_data_changes_digest(self, seed, n, d, data):
        X, y = _problem(seed, n, d)
        base = matrix_digest(X, y)
        row = data.draw(st.integers(0, n - 1), label="row")
        col = data.draw(st.integers(0, d - 1), label="col")
        perturbed = X.copy()
        perturbed[row, col] += 1e-9
        assert matrix_digest(perturbed, y) != base
        flipped = list(y)
        flipped[row] = 1 - flipped[row]
        assert matrix_digest(X, flipped) != base
        # a row swap preserves the multiset but not the content address
        if n >= 2 and not np.array_equal(X[0], X[1]):
            swapped = X.copy()
            swapped[[0, 1]] = swapped[[1, 0]]
            assert matrix_digest(swapped, y) != base

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_same_inputs_same_key_and_param_order_irrelevant(self, seed):
        X, y = _problem(seed)
        digest = matrix_digest(X, y)
        params_a = {"n_estimators": 25, "max_depth": 10}
        params_b = {"max_depth": 10, "n_estimators": 25}
        assert (
            _key(digest, model_name="rf", params=params_a)
            == _key(digest, model_name="rf", params=params_b)
        )

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_any_single_perturbation_changes_key(self, seed):
        X, y = _problem(seed)
        digest = matrix_digest(X, y)
        base = _key(digest)
        perturbations = [
            {"digest": matrix_digest(X + 1e-9, y)},
            {"model_name": "svm"},
            {"fold_index": 1},
            {"n_folds": 5},
            {"random_state": 1},
            {"params": {"C": 1.0000001}},
            {"params": {"C": 1.0, "gamma": 0.1}},
            {"role": "fold", "params": None, "grid": {"C": [1.0]}},
        ]
        keys = [_key(digest, **p) for p in perturbations]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_int_and_float_params_do_not_collide(self):
        X, y = _problem(0)
        digest = matrix_digest(X, y)
        assert _key(digest, params={"C": 1}) != _key(digest, params={"C": 1.0})


class TestCachedTuningParity:
    GRID = {"C": [0.1, 10.0]}

    def _tune(self, dataset, use_cache):
        return tune_classical_model(
            "logreg", dataset, param_grid=self.GRID, n_folds=3,
            use_cache=use_cache,
        )

    def test_cached_equals_uncached_exactly(self, tuning_dataset, tmp_path):
        uncached = self._tune(tuning_dataset, use_cache=False)
        telemetry.enable()
        telemetry.reset()
        set_active_cache(ArtifactCache(tmp_path / "cache"))
        try:
            first = self._tune(tuning_dataset, use_cache=True)  # populates
            warm = self._tune(tuning_dataset, use_cache=True)  # replays
            fold_hits = telemetry.metrics.counter("tuning.fold_hits").value
        finally:
            set_active_cache(None)
            telemetry.reset()
            telemetry.disable()
        assert first == uncached
        assert warm == uncached
        assert fold_hits == 3  # the warm run served every outer fold
        assert (tmp_path / "cache" / "tune").is_dir()

    def test_overlapping_grid_reuses_grid_points(self, tuning_dataset, tmp_path):
        telemetry.enable()
        telemetry.reset()
        set_active_cache(ArtifactCache(tmp_path / "cache"))
        try:
            self._tune(tuning_dataset, use_cache=True)
            # A different grid sharing one candidate: the shared grid
            # points replay from cache even though the fold key differs.
            overlapping = tune_classical_model(
                "logreg", tuning_dataset, param_grid={"C": [0.1, 1.0]},
                n_folds=3, use_cache=True,
            )
            hits = telemetry.metrics.counter("tuning.gridpoint_hits").value
        finally:
            set_active_cache(None)
            telemetry.reset()
            telemetry.disable()
        assert hits == 3  # C=0.1 in each of the 3 outer folds
        assert overlapping.best_params["C"] in (0.1, 1.0)

    def test_no_active_cache_is_uncached(self, tuning_dataset):
        assert (
            self._tune(tuning_dataset, use_cache=True)
            == self._tune(tuning_dataset, use_cache=False)
        )


class TestShardedTuningReduction:
    def test_fold_shards_reduce_to_serial_result(self, tuning_dataset):
        serial = tune_classical_model(
            "logreg", tuning_dataset, param_grid={"C": [0.1, 10.0]},
            n_folds=3, use_cache=False,
        )
        folds = [
            tune_classical_fold(
                "logreg", tuning_dataset, i, param_grid={"C": [0.1, 10.0]},
                n_folds=3, use_cache=False,
            )
            for i in range(3)
        ]
        assert reduce_tuning_folds("logreg", folds) == serial

    def test_fold_index_validated(self, tuning_dataset):
        with pytest.raises(ValueError, match="fold_index"):
            tune_classical_fold(
                "logreg", tuning_dataset, 3, param_grid={"C": [1.0]},
                n_folds=3,
            )

    def test_tie_break_prefers_earliest_fold(self):
        folds = [
            {"best_params": {"C": 0.1}, "best_score": 0.9, "test_score": 0.8},
            {"best_params": {"C": 10.0}, "best_score": 0.9, "test_score": 0.7},
        ]
        result = reduce_tuning_folds("logreg", folds)
        assert result.best_params == {"C": 0.1}
        assert result.fold_scores == [0.8, 0.7]
