"""The pull-claim work queue: leases, heartbeats, steal-on-stale, fencing.

The contract under test (``docs/robustness.md``): any number of
unsupervised worker processes sharing one ``--run-dir`` must drain the
task queue **exactly once each** — no lost tasks, no double-merged shards
— and the merged output must be byte-identical to a serial run, even when
workers are SIGKILLed mid-task.  Each section pins one edge:

* claims are mutually exclusive under a real multi-process race;
* a stale lease is stolen with a bumped attempt, and the dead owner's
  late write is rejected by the fence (``checkpoint.stale_attempt``);
* a worker killed mid-shard is recovered by a surviving peer and the
  merged output equals serial;
* a 3-worker queue run reproduces the PR 5 in-process engine's records;
* the engine itself speaks the protocol on resumed runs (steals stale
  peer leases, leaves no lease debris);
* the advisory cache lock excludes concurrent pruners and survives a
  dead holder.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time

import pytest

from repro.benchmark import runner, sharding
from repro.benchmark.checkpoint import RunCheckpoint
from repro.benchmark.parallel import (
    _clean_stale_heartbeat_dirs,
    run_parallel,
)
from repro.benchmark.queue import (
    MergeTimeout,
    QueueError,
    QueueTask,
    QueueWorker,
    WorkQueue,
    expand_tasks,
    merge_results,
    queue_report,
    task_stem,
    wait_for_completion,
)
from repro.benchmark.sharding import Shardable
from repro.cache import ArtifactCache, FileLock, LockTimeout
from repro.faults import FaultInjectedError, FaultPlan, faults
from repro.obs import telemetry

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork"
)

_FORK = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp


@pytest.fixture(autouse=True)
def _clean_slate():
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    faults.clear()
    yield
    faults.clear()
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


def plan(*rules, seed=0) -> FaultPlan:
    return FaultPlan.from_dict({"seed": seed, "rules": list(rules)})


def counter(name: str) -> float:
    return telemetry.metrics.counter(name).value


# ---------------------------------------------------------------------------
# A cheap deterministic workload (inherited by forked workers)
# ---------------------------------------------------------------------------

FAKE_SHARDS = ("cell/a", "cell/b", "cell/c", "cell/d")


class FakeHeavyShards(Shardable):
    name = "fake_heavy"

    def shard_ids(self, context):
        return list(FAKE_SHARDS)

    def run_shard(self, context, shard_id):
        return {"cell": shard_id, "value": len(shard_id) * 7}

    def merge(self, context, shards):
        lines = [
            f"{sid}={shards[sid]['value']}" for sid in self.shard_ids(context)
        ]
        return "fake-heavy:\n" + "\n".join(lines)


def fake_heavy_serial(context=None) -> str:
    sh = FakeHeavyShards()
    return sh.merge(
        context, {sid: sh.run_shard(context, sid) for sid in FAKE_SHARDS}
    )


def _fake_mono(context) -> str:
    return "mono-output"


@pytest.fixture
def fake_shardable(monkeypatch):
    monkeypatch.setitem(
        runner.EXPERIMENTS, "fake_heavy", lambda ctx: fake_heavy_serial(ctx)
    )
    monkeypatch.setitem(runner.EXPERIMENTS, "fake_mono", _fake_mono)
    original = sharding.get_shardable.__wrapped__  # bypass the lru_cache

    def patched(name):
        if name == "fake_heavy":
            return FakeHeavyShards()
        return original(name)

    monkeypatch.setattr(sharding, "get_shardable", patched)
    return "fake_heavy"


def _publish(queue: WorkQueue, names) -> None:
    queue.publish_spec({"experiments": list(names), "scale": None, "seed": 0})


def _drain_worker(run_dir, owner, plan_dict, stale_s, heartbeat_s, barrier):
    """Forked child: run one QueueWorker until the queue drains (or dies)."""
    if plan_dict is not None:
        faults.install(FaultPlan.from_dict(plan_dict))
    if barrier is not None:
        barrier.wait()
    queue = WorkQueue(
        run_dir, owner=owner, stale_after_s=stale_s, heartbeat_s=heartbeat_s
    )
    worker = QueueWorker(queue, None, poll_s=0.05)
    raise SystemExit(worker.run())


def _race_claimer(run_dir, owner, barrier, results):
    """Forked child: race one try_claim against siblings, report the win."""
    queue = WorkQueue(run_dir, owner=owner)
    task = QueueTask("fake_heavy::cell/a", "fake_heavy", "cell/a")
    barrier.wait()
    lease = queue.try_claim(task)
    results.put((owner, lease is not None))


# ---------------------------------------------------------------------------
# Claims: atomicity under a real multi-process race
# ---------------------------------------------------------------------------


class TestClaims:
    @needs_fork
    def test_racing_processes_exactly_one_claim_wins(self, tmp_path):
        run_dir = str(tmp_path / "run")
        WorkQueue(run_dir).leases_dir.mkdir(parents=True)
        n = 4
        barrier = _FORK.Barrier(n)
        results = _FORK.Queue()
        procs = [
            _FORK.Process(
                target=_race_claimer,
                args=(run_dir, f"w{i}", barrier, results),
            )
            for i in range(n)
        ]
        for p in procs:
            p.start()
        outcomes = [results.get(timeout=30) for _ in range(n)]
        for p in procs:
            p.join(timeout=10)
        winners = [owner for owner, won in outcomes if won]
        assert len(winners) == 1, f"expected one winner, got {winners}"

    def test_claim_creates_lease_and_release_frees_it(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="me")
        task = QueueTask("exp::s/1", "exp", "s/1")
        lease = queue.try_claim(task)
        assert lease is not None and lease.attempt == 0
        stored = json.loads(lease.path.read_text())
        assert stored["owner"] == "me" and stored["task"] == "exp::s/1"
        # held by a live (fresh) lease: nobody else can claim
        assert WorkQueue(tmp_path / "run", owner="peer").try_claim(task) is None
        queue.release(lease, completed=False)
        assert not lease.path.exists()
        # released without a record: claimable again at attempt 0
        again = WorkQueue(tmp_path / "run", owner="peer").try_claim(task)
        assert again is not None and again.attempt == 0

    def test_completed_and_failed_tasks_are_not_claimable(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="me")
        done = QueueTask("expA", "expA", None)
        queue.checkpoint.record(
            {"name": "expA", "output": "x", "wall_s": 0.0}
        )
        assert queue.try_claim(done) is None
        bad = QueueTask("expB", "expB", None)
        lease = queue.try_claim(bad)
        queue.record_failure(lease, "ValueError: boom", "tb")
        queue.release(lease, completed=True)
        assert queue.try_claim(bad) is None
        assert queue.failures()[0]["error"] == "ValueError: boom"

    def test_task_stems_with_separators_do_not_collide(self):
        assert task_stem("exp::a/b") != task_stem("exp::a_b")

    def test_heartbeat_refreshes_lease_mtime(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="me", heartbeat_s=0.05)
        lease = queue.try_claim(QueueTask("exp", "exp", None))
        old = time.time() - 100
        os.utime(lease.path, (old, old))
        lease.start_heartbeat(0.05)
        try:
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if lease.path.stat().st_mtime > old + 1:
                    break
                time.sleep(0.02)
            assert lease.path.stat().st_mtime > old + 1
        finally:
            lease.stop_heartbeat()

    def test_fault_point_can_fail_a_claim(self, tmp_path):
        faults.install(plan({"point": "queue.claim", "mode": "error"}))
        queue = WorkQueue(tmp_path / "run", owner="me")
        with pytest.raises(FaultInjectedError):
            queue.try_claim(QueueTask("exp", "exp", None))


# ---------------------------------------------------------------------------
# Steal-on-stale + attempt fencing (the zombie write)
# ---------------------------------------------------------------------------


class TestStealAndFence:
    def _stale_lease(self, tmp_path, stale_s=5.0):
        owner_a = WorkQueue(tmp_path / "run", owner="A", stale_after_s=stale_s)
        task = QueueTask("fake_heavy::cell/a", "fake_heavy", "cell/a")
        lease_a = owner_a.try_claim(task)
        assert lease_a is not None
        # A "dies": its heartbeat stops and the lease mtime ages out.
        old = time.time() - 1000
        os.utime(lease_a.path, (old, old))
        return owner_a, lease_a, task

    def test_stale_lease_is_stolen_with_bumped_attempt(self, tmp_path):
        _, lease_a, task = self._stale_lease(tmp_path)
        owner_b = WorkQueue(tmp_path / "run", owner="B", stale_after_s=5.0)
        lease_b = owner_b.try_claim(task)
        assert lease_b is not None
        assert lease_b.attempt == 1
        assert lease_b.stolen and lease_b.stolen_from["owner"] == "A"
        assert counter("queue.stolen") == 1
        # the dead owner's file is cleaned up; only the stealer's remains
        assert not lease_a.path.exists()
        assert lease_b.path.exists()

    def test_fresh_lease_is_not_stolen(self, tmp_path):
        owner_a = WorkQueue(tmp_path / "run", owner="A", stale_after_s=30.0)
        task = QueueTask("t", "t", None)
        assert owner_a.try_claim(task) is not None
        owner_b = WorkQueue(tmp_path / "run", owner="B", stale_after_s=30.0)
        assert owner_b.try_claim(task) is None
        assert counter("queue.stolen") == 0

    def test_zombie_late_write_rejected_by_fence(self, tmp_path):
        """The acceptance edge: A's lease is stolen while A is wedged; A
        wakes and tries to checkpoint — the write must be discarded."""
        owner_a, lease_a, task = self._stale_lease(tmp_path)
        owner_b = WorkQueue(tmp_path / "run", owner="B", stale_after_s=5.0)
        lease_b = owner_b.try_claim(task)

        # B (the stealer) records first — accepted.
        checkpoint = owner_b.checkpoint
        assert checkpoint.record_shard(
            "fake_heavy", "cell/a", {"value": 1},
            meta={"attempt": lease_b.attempt, "owner": "B"},
            fence=lease_b.is_current,
        )
        owner_b.release(lease_b, completed=True)

        # The zombie wakes up and tries its late write — rejected.
        assert not owner_a.checkpoint.record_shard(
            "fake_heavy", "cell/a", {"value": 666},
            meta={"attempt": lease_a.attempt, "owner": "A"},
            fence=lease_a.is_current,
        )
        assert counter("checkpoint.stale_attempt") == 1
        # the surviving record is the stealer's
        recs = checkpoint.completed_shard_records("fake_heavy")
        assert recs["cell/a"]["payload"] == {"value": 1}
        assert recs["cell/a"]["meta"]["owner"] == "B"

    def test_zombie_monolith_record_rejected_by_fence(self, tmp_path):
        owner_a, lease_a, _ = self._stale_lease(tmp_path)
        task = QueueTask("mono", "mono", None)
        lease = WorkQueue(tmp_path / "run", owner="A").try_claim(task)
        # steal it from a peer
        old = time.time() - 1000
        os.utime(lease.path, (old, old))
        owner_b = WorkQueue(tmp_path / "run", owner="B", stale_after_s=5.0)
        lease_b = owner_b.try_claim(task)
        assert lease_b.attempt == 1
        assert not owner_b.checkpoint.record(
            {"name": "mono", "output": "zombie", "attempt": 0},
            fence=lease.is_current,
        )
        assert counter("checkpoint.stale_attempt") == 1
        assert owner_b.checkpoint.record(
            {"name": "mono", "output": "fresh", "attempt": 1},
            fence=lease_b.is_current,
        )
        assert owner_b.checkpoint.completed()["mono"]["output"] == "fresh"

    def test_steal_fault_point_fires(self, tmp_path):
        faults.install(plan({"point": "queue.steal", "mode": "error"}))
        _, _, task = self._stale_lease(tmp_path)
        owner_b = WorkQueue(tmp_path / "run", owner="B", stale_after_s=5.0)
        with pytest.raises(FaultInjectedError):
            owner_b.try_claim(task)


# ---------------------------------------------------------------------------
# The run spec: split-brain rejection
# ---------------------------------------------------------------------------


class TestRunSpec:
    def test_first_worker_publishes_later_workers_validate(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="A")
        _publish(queue, ["fake_heavy"])
        peer = WorkQueue(tmp_path / "run", owner="B")
        spec = peer.publish_spec(
            {"experiments": ["fake_heavy"], "scale": None, "seed": 0}
        )
        assert spec["experiments"] == ["fake_heavy"]

    def test_conflicting_spec_is_rejected(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="A")
        _publish(queue, ["fake_heavy"])
        peer = WorkQueue(tmp_path / "run", owner="B")
        with pytest.raises(QueueError, match="different run"):
            peer.publish_spec(
                {"experiments": ["fake_heavy"], "scale": 99, "seed": 0}
            )

    def test_missing_spec_raises(self, tmp_path):
        with pytest.raises(QueueError, match="no worker has published"):
            WorkQueue(tmp_path / "run").load_spec()


# ---------------------------------------------------------------------------
# Crash recovery: kill a worker mid-shard, a peer steals, merge == serial
# ---------------------------------------------------------------------------


class TestCrashRecovery:
    @needs_fork
    def test_killed_worker_recovered_by_peer_merge_equals_serial(
        self, fake_shardable, tmp_path
    ):
        run_dir = str(tmp_path / "run")
        queue = WorkQueue(run_dir, owner="coordinator", stale_after_s=1.0)
        _publish(queue, ["fake_heavy", "fake_mono"])

        # Worker A is fated to die mid-queue: SIGKILL on cell/b, attempt 0.
        kill_plan = {"seed": 0, "rules": [{
            "point": "worker.run", "mode": "kill",
            "match": {"experiment": "fake_heavy", "shard": "cell/b"},
        }]}
        a = _FORK.Process(
            target=_drain_worker,
            args=(run_dir, "worker-a", kill_plan, 1.0, 0.2, None),
        )
        a.start()
        a.join(timeout=60)
        assert a.exitcode == -9  # SIGKILLed mid-task, lease left behind

        # A held cell/b when it died; its lease must still be on disk.
        held = queue._task_leases(
            QueueTask("fake_heavy::cell/b", "fake_heavy", "cell/b")
        )
        assert held and held[-1][0] == 0

        # Worker B drains the rest, stealing A's stale lease.
        b = _FORK.Process(
            target=_drain_worker,
            args=(run_dir, "worker-b", None, 1.0, 0.2, None),
        )
        b.start()
        b.join(timeout=60)
        assert b.exitcode == 0

        tasks = expand_tasks(["fake_heavy", "fake_mono"], None)
        wait_for_completion(queue, tasks, timeout_s=5)
        records = merge_results(queue, None, ["fake_heavy", "fake_mono"])
        by_name = {r["name"]: r for r in records}
        assert by_name["fake_heavy"]["output"] == fake_heavy_serial()
        assert by_name["fake_mono"]["output"] == "mono-output"
        assert by_name["fake_heavy"]["attempts"] >= 2  # a steal happened

        report = queue_report(queue)
        assert report["steals"] >= 1
        summaries = {w["owner"]: w for w in report["workers"]}
        assert summaries["worker-b"]["steals"] >= 1
        assert not summaries["worker-a"]["finished"]
        # exactly one durable record per shard, each from a live attempt
        recs = queue.checkpoint.completed_shard_records("fake_heavy")
        assert set(recs) == set(FAKE_SHARDS)
        assert recs["cell/b"]["meta"]["owner"] == "worker-b"
        assert recs["cell/b"]["meta"]["attempt"] == 1

    @needs_fork
    def test_three_worker_queue_matches_engine_records(
        self, fake_shardable, tmp_path
    ):
        """Full-queue parity: 3 pull-workers == the PR 5 in-process engine."""
        engine = {
            r["name"]: r["output"]
            for r in run_parallel(
                ["fake_heavy", "fake_mono"], None, jobs=2, warm=False
            )
        }

        run_dir = str(tmp_path / "run")
        queue = WorkQueue(run_dir, owner="coordinator")
        _publish(queue, ["fake_heavy", "fake_mono"])
        workers = [
            _FORK.Process(
                target=_drain_worker,
                args=(run_dir, f"worker-{i}", None, 30.0, 0.5, None),
            )
            for i in range(3)
        ]
        for p in workers:
            p.start()
        for p in workers:
            p.join(timeout=60)
            assert p.exitcode == 0

        tasks = expand_tasks(["fake_heavy", "fake_mono"], None)
        wait_for_completion(queue, tasks, timeout_s=5)
        records = merge_results(queue, None, ["fake_heavy", "fake_mono"])
        by_name = {r["name"]: r["output"] for r in records}
        assert by_name == engine
        assert by_name["fake_heavy"] == fake_heavy_serial()
        # Every task completed; on an idle host no lease goes stale so
        # there are no steals and exactly one completion per task.  Under
        # host CPU starvation a heartbeat can legitimately stall past the
        # stale threshold, so each steal may add one attempt-fenced extra
        # completion record — never fewer, and the merged bytes above are
        # already asserted identical either way.
        report = queue_report(queue)
        n_tasks = len(FAKE_SHARDS) + 1
        assert (
            n_tasks <= report["completed"] <= n_tasks + report["steals"]
        ), report
        assert report["n_workers"] == 3

    def test_deterministic_failure_is_terminal_not_retried(
        self, fake_shardable, monkeypatch, tmp_path
    ):
        monkeypatch.setitem(
            runner.EXPERIMENTS, "fake_mono",
            lambda ctx: (_ for _ in ()).throw(ValueError("deterministic")),
        )
        queue = WorkQueue(tmp_path / "run", owner="w")
        _publish(queue, ["fake_mono"])
        worker = QueueWorker(queue, None, poll_s=0.05)
        assert worker.run() == 1
        assert worker.summary["failed"] == 1
        records = merge_results(queue, None, ["fake_mono"])
        assert records[0]["failed"] and "deterministic" in records[0]["error"]

    def test_wait_for_completion_times_out_with_diagnosis(self, tmp_path):
        queue = WorkQueue(tmp_path / "run", owner="w")
        tasks = [QueueTask("never", "never", None)]
        with pytest.raises(MergeTimeout, match="never"):
            wait_for_completion(queue, tasks, timeout_s=0.2, poll_s=0.05)


# ---------------------------------------------------------------------------
# The engine as a protocol consumer (cooperative resumed runs)
# ---------------------------------------------------------------------------


class TestEngineCooperation:
    @needs_fork
    def test_engine_steals_stale_peer_lease_and_cleans_up(
        self, fake_shardable, tmp_path
    ):
        run_dir = tmp_path / "run"
        checkpoint = RunCheckpoint(run_dir)
        # A dead peer's lease on cell/a, long stale.
        peer = WorkQueue(run_dir, owner="dead-peer")
        lease = peer.try_claim(
            QueueTask("fake_heavy::cell/a", "fake_heavy", "cell/a")
        )
        old = time.time() - 1000
        os.utime(lease.path, (old, old))

        records = list(
            run_parallel(
                [fake_shardable, "fake_mono"], None, jobs=2, warm=False,
                checkpoint=checkpoint, resume=True,
            )
        )
        by_name = {r["name"]: r for r in records}
        assert by_name["fake_heavy"]["output"] == fake_heavy_serial()
        assert by_name["fake_mono"]["output"] == "mono-output"
        assert counter("queue.stolen") >= 1
        # all leases released: no coordination debris left behind
        leases = list((run_dir / "leases").iterdir())
        assert leases == []
        # heartbeats lived inside the run dir, not in a tempdir
        assert (run_dir / "heartbeats").is_dir()

    @needs_fork
    def test_engine_defers_to_live_peer_and_adopts_its_result(
        self, fake_shardable, tmp_path
    ):
        """A live peer holds cell/a and completes it mid-run; the engine
        must adopt the peer's durable record instead of recomputing."""
        run_dir = tmp_path / "run"
        checkpoint = RunCheckpoint(run_dir)
        peer = WorkQueue(run_dir, owner="live-peer")
        task = QueueTask("fake_heavy::cell/a", "fake_heavy", "cell/a")
        lease = peer.try_claim(task)
        lease.start_heartbeat(0.1)

        def complete_soon():
            time.sleep(1.0)
            peer.checkpoint.record_shard(
                "fake_heavy", "cell/a",
                FakeHeavyShards().run_shard(None, "cell/a"),
                meta={"attempt": 0, "owner": "live-peer", "wall_s": 0.0,
                      "cpu_s": 0.0},
                fence=lease.is_current,
            )
            peer.release(lease, completed=True)

        import threading

        thread = threading.Thread(target=complete_soon)
        thread.start()
        try:
            records = list(
                run_parallel(
                    [fake_shardable], None, jobs=2, warm=False,
                    checkpoint=checkpoint, resume=True,
                )
            )
        finally:
            thread.join()
        assert records[0]["output"] == fake_heavy_serial()
        assert counter("parallel.tasks_adopted") >= 1
        assert counter("queue.stolen") == 0
        recs = checkpoint.completed_shard_records("fake_heavy")
        assert recs["cell/a"]["meta"]["owner"] == "live-peer"


# ---------------------------------------------------------------------------
# Heartbeat hygiene (the tempdir leak) and the advisory cache lock
# ---------------------------------------------------------------------------


class TestHeartbeatHygiene:
    def test_stale_tempdirs_are_cleaned(self, tmp_path, monkeypatch):
        import tempfile as _tempfile

        monkeypatch.setattr(_tempfile, "gettempdir", lambda: str(tmp_path))
        stale = tmp_path / "repro-bench-hb-stale"
        stale.mkdir()
        (stale / "x.hb").touch()
        old = time.time() - 7200
        os.utime(stale / "x.hb", (old, old))
        os.utime(stale, (old, old))
        fresh = tmp_path / "repro-bench-hb-fresh"
        fresh.mkdir()
        (fresh / "y.hb").touch()
        assert _clean_stale_heartbeat_dirs() == 1
        assert not stale.exists()
        assert fresh.exists()

    @needs_fork
    def test_checkpointed_run_keeps_heartbeats_in_run_dir(
        self, fake_shardable, tmp_path, monkeypatch
    ):
        import tempfile as _tempfile

        tmp_root = tmp_path / "tmproot"
        tmp_root.mkdir()
        monkeypatch.setattr(_tempfile, "gettempdir", lambda: str(tmp_root))
        monkeypatch.setattr(
            _tempfile, "mkdtemp",
            lambda prefix="": pytest.fail(
                "checkpointed run must not create heartbeat tempdirs"
            ),
        )
        run_dir = tmp_path / "run"
        records = list(
            run_parallel(
                [fake_shardable], None, jobs=2, warm=False,
                checkpoint=RunCheckpoint(run_dir),
            )
        )
        assert records[0]["output"] == fake_heavy_serial()
        assert (run_dir / "heartbeats").is_dir()
        assert list((run_dir / "heartbeats").iterdir()) == []


def _locked_appender(path, lock_path, barrier, n_rounds):
    barrier.wait()
    for _ in range(n_rounds):
        with FileLock(lock_path, heartbeat_s=0.1):
            with open(path, "r", encoding="utf-8") as handle:
                value = int(handle.read())
            time.sleep(0.002)  # widen the lost-update window
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(str(value + 1))


class TestCacheLock:
    @needs_fork
    def test_lock_excludes_concurrent_mutators(self, tmp_path):
        target = tmp_path / "counter.txt"
        target.write_text("0")
        lock_path = tmp_path / "counter.lock"
        n_procs, n_rounds = 3, 10
        barrier = _FORK.Barrier(n_procs)
        procs = [
            _FORK.Process(
                target=_locked_appender,
                args=(str(target), str(lock_path), barrier, n_rounds),
            )
            for _ in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        # read-modify-write under the lock: no lost updates
        assert int(target.read_text()) == n_procs * n_rounds

    def test_stale_lock_is_stolen(self, tmp_path):
        lock_path = tmp_path / "x.lock"
        lock_path.touch()
        old = time.time() - 1000
        os.utime(lock_path, (old, old))
        lock = FileLock(lock_path, stale_after_s=5.0, timeout_s=5.0)
        lock.acquire()
        assert lock.held
        assert counter("lock.stolen") == 1
        lock.release()
        assert not lock_path.exists()

    def test_live_lock_times_out(self, tmp_path):
        lock_path = tmp_path / "y.lock"
        lock_path.touch()  # fresh mtime: a live holder
        lock = FileLock(lock_path, stale_after_s=60.0, timeout_s=0.3)
        with pytest.raises(LockTimeout):
            lock.acquire()

    def test_prune_takes_and_releases_the_lock(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        for i in range(3):
            cache.put("corpus", f"key{i}" * 10, list(range(100)))
        report = cache.prune(1)
        assert report["removed"] == 3
        assert not (tmp_path / "cache" / "prune.lock").exists()
        assert counter("lock.acquired") == 1
        assert counter("lock.released") == 1
