"""Tests for the repro-infer CLI and the figure-data exporters."""

import json

import pytest

from repro.cli import main as infer_main
from repro.core.persistence import save_model
from repro.tabular.column import Column
from repro.tabular.csv_io import write_csv
from repro.tabular.table import Table


@pytest.fixture()
def sample_csv(tmp_path):
    table = Table(
        [
            Column("id", [str(i) for i in range(40)]),
            Column("salary", [str(1000 + 13 * i) for i in range(40)]),
            Column("state", ["CA", "TX", "NY", "WA"] * 10),
        ],
        name="sample",
    )
    path = tmp_path / "sample.csv"
    write_csv(table, path)
    return path


@pytest.fixture(scope="module")
def saved_model(tmp_path_factory):
    from repro.core.models import RandomForestModel
    from repro.datagen.corpus import generate_corpus

    corpus = generate_corpus(n_examples=200, seed=2)
    model = RandomForestModel(n_estimators=8, random_state=0)
    model.fit(corpus.dataset)
    path = tmp_path_factory.mktemp("models") / "rf.model"
    save_model(model, path)
    return path


class TestInferCli:
    def test_table_output_with_saved_model(self, sample_csv, saved_model, capsys):
        code = infer_main([str(sample_csv), "--model", str(saved_model)])
        assert code == 0
        out = capsys.readouterr().out
        assert "salary" in out and "feature type" in out

    def test_json_output(self, sample_csv, saved_model, capsys):
        code = infer_main(
            [str(sample_csv), "--model", str(saved_model), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {row["column"] for row in payload} == {"id", "salary", "state"}
        for row in payload:
            assert 0.0 <= row["confidence"] <= 1.0

    def test_trains_and_saves_when_no_artifact(self, sample_csv, tmp_path, capsys):
        artifact = tmp_path / "fresh.model"
        code = infer_main(
            [str(sample_csv), "--save", str(artifact),
             "--train-examples", "150", "--trees", "6"]
        )
        assert code == 0
        assert artifact.exists()

    def test_missing_file_errors(self, saved_model):
        with pytest.raises(SystemExit):
            infer_main(["/does/not/exist.csv", "--model", str(saved_model)])

    def test_empty_csv_exits_nonzero(self, saved_model, tmp_path, capsys):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        code = infer_main([str(empty), "--model", str(saved_model)])
        assert code == 2
        captured = capsys.readouterr()
        assert "empty CSV" in captured.err
        assert captured.out == ""

    def test_unreadable_csv_exits_nonzero(self, saved_model, tmp_path, capsys):
        # A UTF-16 BOM followed by bytes that are not valid UTF-16: the file
        # declares its encoding and lies, which is unsalvageable.
        binary = tmp_path / "binary.csv"
        binary.write_bytes(b"\xff\xfe\x00\x01garbage")
        code = infer_main([str(binary), "--model", str(saved_model)])
        assert code == 2
        assert "not valid utf-16-le" in capsys.readouterr().err


class TestFigureData:
    def test_export_figure9_and_10(self, small_context, tmp_path):
        from repro.benchmark.datastats import run_datastats
        from repro.benchmark.figure_data import export_figure9, export_figure10
        from repro.benchmark.robustness import run_robustness

        robustness = run_robustness(
            small_context, models=("rf",), n_runs=3, max_columns=15
        )
        paths = export_figure9(robustness, tmp_path)
        assert len(paths) == 1
        content = paths[0].read_text()
        assert "pct_predictions_unchanged" in content

        stats = run_datastats(small_context)
        paths = export_figure10(stats, tmp_path)
        assert len(paths) == 5  # one per TABLE18 stat
        assert "cumulative_fraction" in paths[0].read_text()

    def test_export_figure8(self, small_context, tmp_path):
        from repro.benchmark.downstream_exp import run_downstream_experiment
        from repro.benchmark.figure_data import export_figure8

        result = run_downstream_experiment(
            small_context, dataset_names=("Hayes", "MBA"), seed=1
        )
        paths = export_figure8(result, tmp_path)
        assert len(paths) == 8  # 4 approaches x 2 model kinds
        for path in paths:
            assert path.exists()
