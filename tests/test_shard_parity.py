"""Differential parity layer for the sharded sub-experiment scheduler.

The contract under test (``docs/performance.md``): decomposing a heavy
experiment into sub-tasks and scheduling them across forked workers must
be *invisible* in the output — byte-identical to a serial run at any
``--jobs``, for any completion order, across worker crashes/restarts, and
across ``--resume`` of a partially sharded run.  Each section pins one
side of that contract:

* shard/merge round-trips of the real heavy experiments equal their
  serial entry points, with the merge insensitive to payload order;
* the forked engine assembles sharded experiments into records identical
  to serial execution, interleaved with monolithic experiments in
  canonical order;
* per-shard checkpoint records carry their parent experiment name, a
  resumed partial run replays identically, and records that land under
  the wrong experiment are discarded, not grafted.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import random
import shutil

import pytest

from repro.benchmark import runner, sharding
from repro.benchmark.checkpoint import RunCheckpoint
from repro.benchmark.context import BenchmarkContext
from repro.benchmark.parallel import run_parallel
from repro.benchmark.sharding import Shardable, get_shardable, is_shardable
from repro.faults import FaultPlan, faults
from repro.obs import telemetry

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork"
)


@pytest.fixture(autouse=True)
def _clean_slate():
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    faults.clear()
    yield
    faults.clear()
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


def plan(*rules, seed=0) -> FaultPlan:
    return FaultPlan.from_dict({"seed": seed, "rules": list(rules)})


def counter(name: str) -> float:
    return telemetry.metrics.counter(name).value


# ---------------------------------------------------------------------------
# A cheap, fully deterministic Shardable for engine-level tests
# ---------------------------------------------------------------------------

FAKE_SHARDS = ("cell/a", "cell/b", "cell/c", "cell/d")


class FakeHeavyShards(Shardable):
    name = "fake_heavy"

    def shard_ids(self, context):
        return list(FAKE_SHARDS)

    def run_shard(self, context, shard_id):
        return {"cell": shard_id, "value": len(shard_id) * 7}

    def merge(self, context, shards):
        lines = [
            f"{sid}={shards[sid]['value']}" for sid in self.shard_ids(context)
        ]
        return "fake-heavy:\n" + "\n".join(lines)


def fake_heavy_serial(context=None) -> str:
    sh = FakeHeavyShards()
    return sh.merge(
        context, {sid: sh.run_shard(context, sid) for sid in FAKE_SHARDS}
    )


def _fake_mono(context) -> str:
    return "mono-output"


@pytest.fixture
def fake_shardable(monkeypatch):
    """Register ``fake_heavy`` as a shardable experiment + a monolithic
    sibling, visible to forked workers through inherited memory."""
    monkeypatch.setitem(
        runner.EXPERIMENTS, "fake_heavy", lambda ctx: fake_heavy_serial(ctx)
    )
    monkeypatch.setitem(runner.EXPERIMENTS, "fake_mono", _fake_mono)
    original = sharding.get_shardable.__wrapped__  # bypass the lru_cache

    def patched(name):
        if name == "fake_heavy":
            return FakeHeavyShards()
        return original(name)

    monkeypatch.setattr(sharding, "get_shardable", patched)
    return "fake_heavy"


# ---------------------------------------------------------------------------
# Shard/merge round-trips of the real heavy experiments
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def shard_context():
    return BenchmarkContext(n_examples=240, seed=0)


class TestShardMergeParity:
    def test_registry_names_match_experiments(self, shard_context):
        for name in sharding.shardable_names():
            assert name in runner.EXPERIMENTS
            assert is_shardable(name)
            shardable = get_shardable(name)
            assert shardable is not None and shardable.name == name
            ids = shardable.shard_ids(shard_context)
            assert ids and len(ids) == len(set(ids))
        assert get_shardable("table18") is None
        assert not is_shardable("table18")

    def test_tuning_sharded_equals_serial_any_order(self, shard_context):
        from repro.benchmark.tuning_exp import render_tuning, run_tuning

        serial = render_tuning(run_tuning(shard_context))
        shardable = get_shardable("tuning")
        payloads = {
            sid: shardable.run_shard(shard_context, sid)
            for sid in shardable.shard_ids(shard_context)
        }
        for seed in (0, 1, 2):
            items = list(payloads.items())
            random.Random(seed).shuffle(items)
            assert shardable.merge(shard_context, dict(items)) == serial

    def test_table15_sharded_equals_serial_any_order(self, shard_context):
        from repro.benchmark.table15 import (
            Table15Shards,
            render_table15,
            run_table15,
        )

        subset = ("Hayes", "Supreme", "Boxing")
        serial = render_table15(run_table15(shard_context, dataset_names=subset))
        shardable = Table15Shards(dataset_names=subset)
        payloads = {
            sid: shardable.run_shard(shard_context, sid)
            for sid in shardable.shard_ids(shard_context)
        }
        items = list(payloads.items())
        random.Random(99).shuffle(items)
        assert shardable.merge(shard_context, dict(items)) == serial

    def test_downstream_sharded_equals_serial_any_order(self, shard_context):
        from repro.benchmark.downstream_exp import (
            DownstreamShards,
            render_downstream,
            run_downstream_experiment,
        )

        subset = ("Hayes", "Supreme", "Zoo", "MBA")
        serial = render_downstream(
            run_downstream_experiment(
                shard_context, dataset_names=subset, seed=3
            )
        )
        shardable = DownstreamShards(dataset_names=subset, seed=3)
        payloads = {
            sid: shardable.run_shard(shard_context, sid)
            for sid in shardable.shard_ids(shard_context)
        }
        items = list(payloads.items())
        random.Random(5).shuffle(items)
        assert shardable.merge(shard_context, dict(items)) == serial

    def test_merge_rejects_missing_shards(self, shard_context):
        shardable = get_shardable("tuning")
        with pytest.raises(ValueError, match="missing shard"):
            shardable.merge(shard_context, {"logreg/fold0": {}})


# ---------------------------------------------------------------------------
# The forked engine: sharded == serial, any --jobs, canonical order
# ---------------------------------------------------------------------------


class TestEngineShardParity:
    @needs_fork
    @pytest.mark.parametrize("jobs", [2, 3])
    def test_sharded_engine_output_identical_to_serial(
        self, fake_shardable, jobs
    ):
        records = list(
            run_parallel([fake_shardable], None, jobs=jobs, warm=False)
        )
        assert len(records) == 1
        assert records[0]["output"] == fake_heavy_serial()
        assert records[0]["sharded"] is True
        assert records[0]["n_shards"] == len(FAKE_SHARDS)
        assert counter("parallel.shards_completed") == len(FAKE_SHARDS)

    @needs_fork
    def test_mixed_monolithic_and_sharded_keep_canonical_order(
        self, fake_shardable
    ):
        names = ["fake_mono", "fake_heavy"]
        records = list(run_parallel(names, None, jobs=2, warm=False))
        assert [r["name"] for r in records] == names
        assert records[0]["output"] == "mono-output"
        assert "sharded" not in records[0]
        assert records[1]["output"] == fake_heavy_serial()

    @needs_fork
    def test_no_shard_heavy_runs_monolithically(self, fake_shardable):
        records = list(
            run_parallel(
                ["fake_mono", "fake_heavy"], None, jobs=2, warm=False,
                shard_heavy=False,
            )
        )
        by_name = {r["name"]: r for r in records}
        assert by_name["fake_heavy"]["output"] == fake_heavy_serial()
        assert "sharded" not in by_name["fake_heavy"]
        assert counter("parallel.shards_completed") == 0

    @needs_fork
    def test_real_tuning_through_engine_equals_serial(self, shard_context):
        from repro.benchmark.tuning_exp import render_tuning, run_tuning

        serial = render_tuning(run_tuning(shard_context))
        records = list(
            run_parallel(["tuning"], shard_context, jobs=2, warm=False)
        )
        assert records[0]["output"] == serial
        assert records[0]["sharded"] is True

    @needs_fork
    def test_killed_shard_worker_restarts_and_output_unchanged(
        self, fake_shardable, tmp_path
    ):
        faults.install(plan({
            "point": "worker.run", "mode": "kill",
            "match": {"experiment": "fake_heavy", "attempt": "0"},
        }))
        checkpoint = RunCheckpoint(tmp_path / "run")
        records = list(
            run_parallel(
                [fake_shardable], None, jobs=2, warm=False,
                checkpoint=checkpoint,
            )
        )
        record = records[0]
        assert record["output"] == fake_heavy_serial()
        assert record["attempts"] == 2  # at least one shard was re-run
        assert counter("worker.restart") >= 1
        # every shard still checkpointed under its parent experiment
        done = checkpoint.completed_shards("fake_heavy")
        assert set(done) == set(FAKE_SHARDS)

    @needs_fork
    def test_shard_restarts_exhausted_fails_the_experiment(
        self, fake_shardable
    ):
        faults.install(plan({
            "point": "worker.run", "mode": "kill",
            "match": {"experiment": "fake_heavy", "shard": "cell/b"},
        }))
        records = list(
            run_parallel(
                ["fake_heavy", "fake_mono"], None, jobs=2, warm=False,
                max_restarts=1,
            )
        )
        by_name = {r["name"]: r for r in records}
        failure = by_name["fake_heavy"]
        assert failure["failed"] is True
        assert "cell/b" in failure["error"]
        assert failure["attempts"] == 2
        # the monolithic sibling is unaffected
        assert by_name["fake_mono"]["output"] == "mono-output"


# ---------------------------------------------------------------------------
# Checkpointed shards: parent attribution + partial-resume replay
# ---------------------------------------------------------------------------


class TestShardCheckpoints:
    def test_record_carries_parent_experiment(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record_shard("expA", "logreg/fold0", {"score": 0.5})
        path = checkpoint.shard_path("expA", "logreg/fold0")
        assert path.is_file()
        stored = json.loads(path.read_text())
        assert stored["experiment"] == "expA"
        assert stored["shard"] == "logreg/fold0"
        assert checkpoint.completed_shards("expA") == {
            "logreg/fold0": {"score": 0.5}
        }

    def test_misattributed_record_is_discarded(self, tmp_path):
        """Regression: a shard record must only resume its own parent.

        Before attribution, a record copied (or hand-moved) into another
        experiment's shard directory would silently replay there."""
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record_shard("expA", "cell/a", {"value": 1})
        source = checkpoint.shard_path("expA", "cell/a")
        target = checkpoint.shard_path("expB", "cell/a")
        target.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(source, target)
        assert checkpoint.completed_shards("expB") == {}
        assert counter("checkpoint.shard_misattributed") == 1
        # the rightful owner still resumes
        assert checkpoint.completed_shards("expA") == {"cell/a": {"value": 1}}

    def test_corrupt_payload_degrades_to_rerun(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record_shard("expA", "cell/a", {"value": 1})
        path = checkpoint.shard_path("expA", "cell/a")
        stored = json.loads(path.read_text())
        stored["payload"] = stored["payload"][:-8] + "AAAAAAAA"
        path.write_text(json.dumps(stored))
        assert checkpoint.completed_shards("expA") == {}
        assert counter("checkpoint.invalid") == 1

    def test_shard_ids_with_separators_do_not_collide(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record_shard("exp", "a/b", {"v": 1})
        checkpoint.record_shard("exp", "a_b", {"v": 2})
        done = checkpoint.completed_shards("exp")
        assert done == {"a/b": {"v": 1}, "a_b": {"v": 2}}

    @needs_fork
    def test_resume_of_partial_sharded_run_replays_identically(
        self, fake_shardable, tmp_path
    ):
        run_dir = tmp_path / "run"
        checkpoint = RunCheckpoint(run_dir)
        full = list(
            run_parallel(
                [fake_shardable], None, jobs=2, warm=False,
                checkpoint=checkpoint,
            )
        )[0]
        assert set(checkpoint.completed_shards("fake_heavy")) == set(FAKE_SHARDS)

        # Simulate a crash that lost half the shards: delete two records.
        for shard in FAKE_SHARDS[:2]:
            os.unlink(checkpoint.shard_path("fake_heavy", shard))

        resumed = list(
            run_parallel(
                [fake_shardable], None, jobs=2, warm=False,
                checkpoint=checkpoint, resume=True,
            )
        )[0]
        assert resumed["output"] == full["output"] == fake_heavy_serial()
        assert resumed["resumed_shards"] == 2
        # only the two missing cells were recomputed
        assert counter("parallel.shards_completed") == len(FAKE_SHARDS) + 2

    @needs_fork
    def test_fully_checkpointed_run_resumes_without_workers(
        self, fake_shardable, tmp_path
    ):
        checkpoint = RunCheckpoint(tmp_path / "run")
        shardable = FakeHeavyShards()
        for sid in FAKE_SHARDS:
            checkpoint.record_shard(
                "fake_heavy", sid, shardable.run_shard(None, sid)
            )
        records = list(
            run_parallel(
                [fake_shardable], None, jobs=2, warm=False,
                checkpoint=checkpoint, resume=True,
            )
        )
        assert records[0]["output"] == fake_heavy_serial()
        assert records[0]["resumed_shards"] == len(FAKE_SHARDS)
        assert counter("parallel.shards_completed") == 0
