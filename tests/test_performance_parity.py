"""Parity tests for the performance layer.

Three invariants the perf work must not bend:

* the vectorized/batched stats kernel matches a straightforward per-cell
  reference implementation (the pre-vectorization algorithm) on a
  property-style sample of generated corpora;
* a cached :class:`~repro.benchmark.context.BenchmarkContext` produces
  artifacts equal to a cold one, and the cache round-trips through disk;
* ``repro-bench`` experiment output with ``--jobs N`` is identical to the
  serial runner (modulo the measured seconds in the section headers).
"""

from __future__ import annotations

import contextlib
import io
import re
from pathlib import Path

import numpy as np
import pytest

from repro.benchmark.context import BenchmarkContext
from repro.benchmark.runner import main
from repro.cache import ArtifactCache, artifact_key
from repro.core.stats import (
    STAT_NAMES,
    DescriptiveStats,
    StatsScanCache,
    _delimiter_count,
    _finite,
    _moments,
    _stopword_count,
    _whitespace_count,
    _word_count,
    compute_stats,
    compute_stats_batch,
)
from repro.datagen.corpus import generate_corpus
from repro.tabular.column import Column
from repro.tabular.csv_io import CSVReadError, load_csv_table

MANGLED_DIR = Path(__file__).parent / "data" / "mangled"
from repro.tabular.dtypes import (
    looks_like_datetime,
    looks_like_email,
    looks_like_list,
    looks_like_url,
    try_parse_float,
)


def reference_compute_stats(column, samples=None):
    """The pre-vectorization per-cell algorithm, kept as the test oracle."""
    present = column.non_missing()
    total = len(column)
    n_nans = column.n_missing()
    distinct = column.distinct()
    if samples is None:
        samples = distinct[:5]

    numeric = [try_parse_float(cell) for cell in present]
    numeric = [v for v in numeric if v is not None]
    if numeric:
        arr = np.asarray(numeric, dtype=float)
        with np.errstate(over="ignore", invalid="ignore"):
            mean_value = _finite(arr.mean())
            std_value = _finite(arr.std())
        min_value = _finite(arr.min())
        max_value = _finite(arr.max())
    else:
        mean_value = std_value = min_value = max_value = 0.0

    mean_word, std_word = _moments([_word_count(c) for c in present])
    mean_stop, std_stop = _moments([_stopword_count(c) for c in present])
    mean_char, std_char = _moments([len(c) for c in present])
    mean_ws, std_ws = _moments([_whitespace_count(c) for c in present])
    mean_delim, std_delim = _moments([_delimiter_count(c) for c in present])

    vector = np.array(
        [
            float(total),
            float(n_nans),
            n_nans / total if total else 0.0,
            float(len(distinct)),
            len(distinct) / total if total else 0.0,
            mean_value,
            std_value,
            min_value,
            max_value,
            mean_word,
            std_word,
            mean_stop,
            std_stop,
            mean_char,
            std_char,
            mean_ws,
            std_ws,
            mean_delim,
            std_delim,
            len(numeric) / len(present) if present else 0.0,
            float(any(looks_like_url(s) for s in samples)),
            float(any(looks_like_email(s) for s in samples)),
            float(any(_delimiter_count(s) >= 2 for s in samples)),
            float(any(looks_like_list(s) for s in samples)),
            float(any(looks_like_datetime(s) for s in samples)),
        ]
    )
    return DescriptiveStats(vector)


def _assert_stats_close(actual, expected, label=""):
    np.testing.assert_allclose(
        actual.values, expected.values, rtol=1e-9, atol=1e-9,
        err_msg=f"stats mismatch {label}",
    )


class TestVectorizedStatsParity:
    def test_property_style_corpus_sample(self):
        # Columns drawn from every generator class across several seeds.
        for seed in (0, 7, 1234):
            corpus = generate_corpus(n_examples=120, seed=seed)
            columns = [c for table in corpus.files for c in table]
            batch = compute_stats_batch(columns)
            for column, stats in zip(columns, batch):
                _assert_stats_close(
                    stats, reference_compute_stats(column), column.name
                )

    def test_handcrafted_edge_cases(self):
        columns = [
            Column("empty", []),
            Column("all_missing", [None, None]),
            Column("constant_huge", ["880000000000000000.0"] * 9),
            Column("mixed", ["1.5", "x,y;z", None, "  ", "a b the c", "-2e3"]),
            Column("unicode", ["véhicule", "straße", "１２３", "٣٤", "x　y"]),
            Column("numbers", ["1.", ".5e2", "5e", "e12", "+1", "1_000",
                               "inf", "nan", "0x1A", "1-2", "1.2.3"]),
            Column("urls", ["http://a.b/c", "x@y.com", "[1, 2]",
                            "2020-01-02", "a,b,c,d"]),
        ]
        batch = compute_stats_batch(columns)
        for column, stats in zip(columns, batch):
            _assert_stats_close(
                stats, reference_compute_stats(column), column.name
            )

    def test_single_equals_batch(self):
        corpus = generate_corpus(n_examples=60, seed=3)
        columns = [c for table in corpus.files for c in table]
        batch = compute_stats_batch(columns)
        for column, stats in zip(columns, batch):
            assert (compute_stats(column).values == stats.values).all()

    def test_fuzz_corpus_batch_matches_reference(self):
        """The batched kernel equals the per-cell oracle on every column
        the mangled-CSV fuzz corpus can produce (NULs, mixed encodings,
        ragged rows, exotic unicode — the inputs vectorization tends to
        mishandle)."""
        columns = []
        for path in sorted(MANGLED_DIR.glob("*.csv")):
            try:
                table = load_csv_table(path)
            except CSVReadError:
                continue  # contentless/undecodable files yield no columns
            columns.extend(list(table))
        assert len(columns) >= 10  # the corpus must actually exercise us
        batch = compute_stats_batch(columns)
        assert len(batch) == len(columns)
        for column, stats in zip(columns, batch):
            _assert_stats_close(
                stats, reference_compute_stats(column), column.name
            )
            assert (compute_stats(column).values == stats.values).all()

    def test_scan_cache_across_batches_is_equivalent(self):
        corpus = generate_corpus(n_examples=100, seed=5)
        columns = [c for table in corpus.files for c in table]
        whole = compute_stats_batch(columns)
        cache = StatsScanCache()
        chunked = []
        for table in corpus.files:
            chunked.extend(compute_stats_batch(list(table), scan_cache=cache))
        for a, b in zip(whole, chunked):
            assert (a.values == b.values).all()


class TestArtifactCacheParity:
    def test_cached_context_equals_cold(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = BenchmarkContext(n_examples=120, seed=2)
        first = BenchmarkContext(n_examples=120, seed=2, cache=cache)
        warm = BenchmarkContext(n_examples=120, seed=2, cache=cache)

        # first populates the cache, warm reads it back from disk
        for context in (first, warm):
            assert context.corpus.n_examples == cold.corpus.n_examples
            np.testing.assert_array_equal(
                context.dataset.stats_matrix(), cold.dataset.stats_matrix()
            )
            assert context.dataset.names == cold.dataset.names
            assert context.dataset.labels == cold.dataset.labels
            assert context.train.names == cold.train.names
            assert context.test.names == cold.test.names
        assert (tmp_path / "cache" / "corpus").exists()

    def test_cached_model_predictions_equal(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cold = BenchmarkContext(n_examples=120, seed=2, rf_estimators=5)
        cached = BenchmarkContext(
            n_examples=120, seed=2, rf_estimators=5, cache=cache
        )
        cached.our_rf  # populate
        warm = BenchmarkContext(
            n_examples=120, seed=2, rf_estimators=5, cache=cache
        )
        profiles = cold.test.profiles
        assert (
            warm.our_rf.predict(profiles)
            == cold.our_rf.predict(profiles)
            == cached.our_rf.predict(profiles)
        )

    def test_cached_downstream_score_equals_cold(self, tmp_path):
        from repro.cache import set_active_cache
        from repro.datagen.downstream import SPEC_BY_NAME, make_dataset
        from repro.downstream.harness import evaluate_assignment
        from repro.downstream.suite import truth_assignments

        dataset = make_dataset(SPEC_BY_NAME["Hayes"], seed=4)
        assignment = truth_assignments(dataset)
        cold = evaluate_assignment(dataset, assignment, "linear", seed=0)
        cache = ArtifactCache(tmp_path / "cache")
        set_active_cache(cache)
        try:
            first = evaluate_assignment(dataset, assignment, "linear", seed=0)
            warm = evaluate_assignment(dataset, assignment, "linear", seed=0)
        finally:
            set_active_cache(None)
        assert cold == first == warm
        assert (tmp_path / "cache" / "score").exists()

    def test_key_changes_with_params(self):
        base = artifact_key("corpus", {"n_examples": 100, "seed": 0})
        assert base == artifact_key("corpus", {"seed": 0, "n_examples": 100})
        assert base != artifact_key("corpus", {"n_examples": 100, "seed": 1})
        assert base != artifact_key("split", {"n_examples": 100, "seed": 0})

    def test_corrupt_entry_degrades_to_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = artifact_key("corpus", {"n_examples": 1})
        cache.put("corpus", key, {"payload": 1})
        cache.path("corpus", key).write_bytes(b"garbage")
        assert cache.get("corpus", key) is None
        cache.put("corpus", key, {"payload": 2})
        assert cache.get("corpus", key) == {"payload": 2}


def _run_cli(argv):
    buffer = io.StringIO()
    with contextlib.redirect_stdout(buffer):
        assert main(argv) == 0
    # mask the measured elapsed seconds in "######## name (12.3s) ########"
    return re.sub(r"\(\d+\.\d+s\)", "(Xs)", buffer.getvalue())


@pytest.mark.slow
class TestSerialVsParallel:
    def test_jobs_output_identical(self, tmp_path):
        base = ["--scale", "300", "--seed", "1",
                "--cache-dir", str(tmp_path / "cache")]
        serial = _run_cli(["table18"] + base)
        # single-experiment runs take the serial path even with --jobs
        parallel = _run_cli(["table18"] + base + ["--jobs", "2"])
        assert serial == parallel

    def test_parallel_engine_matches_run_experiment(self, tmp_path):
        from repro.benchmark.parallel import run_parallel
        from repro.benchmark.runner import run_experiment

        names = ["table18", "table14", "table17"]
        cache = ArtifactCache(tmp_path / "cache")
        context = BenchmarkContext(n_examples=300, seed=1, cache=cache)
        records = list(run_parallel(names, context, jobs=2))
        assert [r["name"] for r in records] == names
        fresh = BenchmarkContext(n_examples=300, seed=1)
        for record in records:
            assert record["output"] == run_experiment(record["name"], fresh)
