"""Shared fixtures: small corpora and a small benchmark context.

Session-scoped so the (relatively) expensive corpus generation and model
fits are paid once per test run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchmark.context import BenchmarkContext
from repro.datagen.corpus import LabeledCorpus, generate_corpus

SMALL_CORPUS_SIZE = 350


@pytest.fixture(scope="session")
def small_corpus() -> LabeledCorpus:
    return generate_corpus(n_examples=SMALL_CORPUS_SIZE, seed=42)


@pytest.fixture(scope="session")
def small_context() -> BenchmarkContext:
    """A context small enough for test-time model fits."""
    return BenchmarkContext(n_examples=500, seed=7, rf_estimators=15, cnn_epochs=4)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
