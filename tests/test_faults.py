"""Chaos suite: deterministic fault injection and the recovery machinery.

Each section drives a real subsystem through :mod:`repro.faults` and
asserts the robustness contract from ``docs/robustness.md``: runs either
recover to the fault-free result or fail loudly with a typed error — never
hang, never return silently-corrupt data.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import random
import socket
import subprocess
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path

import pytest

from repro.benchmark import runner
from repro.benchmark.checkpoint import RunCheckpoint
from repro.benchmark.parallel import run_parallel
from repro.cache import ArtifactCache
from repro.core.featurize import ProfileError, profile_column, profile_table
from repro.faults import (
    FaultInjectedError,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    faults,
)
from repro.obs import telemetry
from repro.obs.export import write_json
from repro.serve import InferenceService, ModelRegistry, ServeClientError
from repro.serve.client import RetryPolicy, ServeClient
from repro.serve.http import make_server
from repro.tabular.column import Column
from repro.tabular.csv_io import CSVReadError, decode_csv_bytes, load_csv_table
from repro.tabular.table import Table

REPO_ROOT = Path(__file__).resolve().parent.parent
MANGLED_DIR = Path(__file__).parent / "data" / "mangled"

CSV_TEXT = "id,salary,state\n" + "\n".join(
    f"{i},{1000 + 13 * i},{['CA', 'TX', 'NY', 'WA'][i % 4]}"
    for i in range(20)
)


@pytest.fixture(autouse=True)
def _clean_slate():
    """Every test starts fault-free with a fresh metrics registry."""
    was_enabled = telemetry.enabled
    telemetry.enable()
    telemetry.reset()
    faults.clear()
    yield
    faults.clear()
    telemetry.reset()
    if not was_enabled:
        telemetry.disable()


def plan(*rules, seed=0) -> FaultPlan:
    return FaultPlan.from_dict({"seed": seed, "rules": list(rules)})


def counter(name: str) -> float:
    return telemetry.metrics.counter(name).value


# ---------------------------------------------------------------------------
# Plans and the injector
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rejects_unknown_mode(self):
        with pytest.raises(FaultPlanError):
            plan({"point": "x", "mode": "explode"})

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(FaultPlanError):
            plan({"point": "x", "probability": 1.5})

    def test_rejects_probability_and_on_call_together(self):
        with pytest.raises(FaultPlanError):
            plan({"point": "x", "probability": 0.5, "on_call": 2})

    def test_load_missing_file_is_a_plan_error(self, tmp_path):
        with pytest.raises(FaultPlanError):
            FaultPlan.load(tmp_path / "nope.json")

    def test_load_invalid_json_is_a_plan_error(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text("{not json")
        with pytest.raises(FaultPlanError):
            FaultPlan.load(path)


class TestInjector:
    def test_inactive_point_is_a_noop(self):
        assert faults.active is None
        faults.point("anything.at.all", key="value")  # must not raise
        payload = b"untouched"
        assert faults.corrupt("anything.at.all", payload) is payload

    def test_on_call_fires_exactly_nth(self):
        injector = FaultInjector()
        injector.install(plan({"point": "p", "on_call": 2}))
        injector.point("p")  # call 1: no fire
        with pytest.raises(FaultInjectedError):
            injector.point("p")  # call 2: fires
        injector.point("p")  # call 3: no fire

    def test_max_fires_bounds_an_always_rule(self):
        injector = FaultInjector()
        injector.install(plan({"point": "p", "max_fires": 2}))
        for _ in range(2):
            with pytest.raises(FaultInjectedError):
                injector.point("p")
        injector.point("p")  # budget spent

    def test_probability_schedule_is_deterministic(self):
        def pattern() -> list[bool]:
            injector = FaultInjector()
            injector.install(plan({"point": "p", "probability": 0.5}, seed=7))
            fired = []
            for _ in range(30):
                try:
                    injector.point("p")
                except FaultInjectedError:
                    fired.append(True)
                else:
                    fired.append(False)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_match_filters_on_stringified_ctx(self):
        injector = FaultInjector()
        injector.install(
            plan({"point": "worker.run",
                  "match": {"experiment": "a", "attempt": "0"}})
        )
        injector.point("worker.run", experiment="b", attempt=0)
        injector.point("worker.run", experiment="a", attempt=1)
        with pytest.raises(FaultInjectedError):
            injector.point("worker.run", experiment="a", attempt=0)

    def test_error_mode_raises_named_builtin(self):
        injector = FaultInjector()
        injector.install(plan({"point": "p", "error": "PermissionError"}))
        with pytest.raises(PermissionError):
            injector.point("p")

    def test_env_var_activates_plan_in_subprocess(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(
            {"rules": [{"point": "csv.read"}]}
        ))
        code = (
            "from repro.faults import faults; "
            "assert faults.active is not None; "
            "print('plan-armed')"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_FAULT_PLAN": str(path),
                 "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "plan-armed" in proc.stdout

    def test_env_var_broken_plan_fails_loudly(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"rules": [{"point": "x", "mode": "bogus"}]}')
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.faults"],
            env={**os.environ, "REPRO_FAULT_PLAN": str(path),
                 "PYTHONPATH": str(REPO_ROOT / "src")},
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
        assert "FaultPlanError" in proc.stderr


# ---------------------------------------------------------------------------
# Crash-safe cache
# ---------------------------------------------------------------------------


def _corrupt_file(path: Path) -> None:
    data = bytearray(path.read_bytes())
    data[-10] ^= 0xFF  # flip one payload bit
    path.write_bytes(bytes(data))


class TestCrashSafeCache:
    def test_bit_rot_is_quarantined_and_rebuilt(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.put("test", "k1", {"payload": list(range(100))})
        _corrupt_file(cache.path("test", "k1"))
        assert cache.get("test", "k1") is None
        assert counter("cache.corrupt") == 1
        assert not cache.path("test", "k1").exists()
        quarantined = list(cache.quarantine_root.iterdir())
        assert len(quarantined) == 1 and quarantined[0].name.startswith("test-")
        # A rebuilt entry stores and reads back cleanly.
        cache.put("test", "k1", {"payload": "fresh"})
        assert cache.get("test", "k1") == {"payload": "fresh"}

    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        path = cache.put("test", "k1", {"x": 1})
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get("test", "k1") is None
        assert counter("cache.corrupt") == 1

    def test_quarantined_entries_are_excluded_from_prune_accounting(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.put("test", "good", {"x": 1})
        cache.put("test", "bad", {"y": 2})
        _corrupt_file(cache.path("test", "bad"))
        assert cache.get("test", "bad") is None  # quarantines it
        live = [p for p, _, _ in cache._entries()]
        assert cache.path("test", "good") in live
        assert all(
            "quarantine" not in p.relative_to(cache.root).parts for p in live
        )

    def test_injected_write_corruption_is_caught_on_read(self, tmp_path):
        faults.install(plan({"point": "cache.write", "mode": "corrupt",
                             "on_call": 1}))
        cache = ArtifactCache(tmp_path / "cache")
        builds = []

        def build():
            builds.append(1)
            return {"artifact": "value"}

        first = cache.fetch("corpus", {"n": 1}, build)
        assert first == {"artifact": "value"}  # build result unaffected
        assert counter("faults.corrupted") == 1
        faults.clear()
        # The stored bytes are damaged: the next fetch quarantines and
        # rebuilds instead of deserializing garbage.
        second = cache.fetch("corpus", {"n": 1}, build)
        assert second == {"artifact": "value"}
        assert len(builds) == 2
        assert counter("cache.corrupt") == 1
        # After the rebuild the entry is healthy again.
        assert cache.fetch("corpus", {"n": 1}, build) == {"artifact": "value"}
        assert len(builds) == 2

    def test_store_failure_degrades_to_warning(self, tmp_path):
        faults.install(plan({"point": "cache.write", "mode": "error",
                             "error": "PermissionError"}))
        cache = ArtifactCache(tmp_path / "cache")
        out = cache.fetch("corpus", {"n": 2}, lambda: {"built": True})
        assert out == {"built": True}
        assert counter("cache.store_failed") == 1

    def test_default_store_fault_also_degrades(self, tmp_path):
        # A plain {"point": "cache.write"} rule (default FaultInjectedError)
        # must degrade exactly like an OS-level failure, not crash fetch().
        faults.install(plan({"point": "cache.write"}))
        cache = ArtifactCache(tmp_path / "cache")
        out = cache.fetch("corpus", {"n": 3}, lambda: {"built": True})
        assert out == {"built": True}
        assert counter("cache.store_failed") == 1

    def test_injected_read_fault_is_a_counted_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        cache.put("test", "k1", {"x": 1})
        faults.install(plan({"point": "cache.read", "max_fires": 1}))
        assert cache.get("test", "k1") is None
        assert counter("cache.read_error") == 1
        assert counter("cache.miss") == 1
        # The entry itself is fine — only the read failed; no quarantine,
        # and the next read succeeds.
        assert not cache.quarantine_root.exists()
        assert cache.get("test", "k1") == {"x": 1}


def _race_put(root: str, value: int) -> None:
    cache = ArtifactCache(root)
    for _ in range(25):
        cache.put("test", "shared-key", {"writer": value, "blob": "x" * 4096})


def _hammer_get(root: str) -> None:
    cache = ArtifactCache(root)
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        cache.get("test", "churn")


class TestCacheConcurrency:
    def test_two_process_same_key_write_race(self, tmp_path):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork")
        ctx = mp.get_context("fork")
        root = str(tmp_path / "cache")
        procs = [ctx.Process(target=_race_put, args=(root, i)) for i in (1, 2)]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0
        # Atomic rename means the survivor is one complete entry — never an
        # interleaving of the two writers.
        entry = ArtifactCache(root).get("test", "shared-key")
        assert entry is not None and entry["writer"] in (1, 2)
        assert counter("cache.corrupt") == 0

    def test_prune_during_concurrent_reads(self, tmp_path):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("needs fork")
        ctx = mp.get_context("fork")
        root = str(tmp_path / "cache")
        cache = ArtifactCache(root)
        cache.put("test", "churn", {"n": 0})
        reader = ctx.Process(target=_hammer_get, args=(root,))
        reader.start()
        deadline = time.monotonic() + 1.5
        n = 0
        while time.monotonic() < deadline:
            cache.put("test", "churn", {"n": n})
            cache.prune(max_bytes=0)
            n += 1
        reader.join(timeout=30)
        # The reader saw hits and misses but never crashed on a vanishing
        # or half-visible entry.
        assert reader.exitcode == 0


# ---------------------------------------------------------------------------
# Hardened ingestion (mangled CSV corpus + typed featurize errors)
# ---------------------------------------------------------------------------


class TestMangledCSV:
    @pytest.mark.parametrize(
        "path", sorted(MANGLED_DIR.glob("*.csv")), ids=lambda p: p.name
    )
    def test_any_bytes_parse_or_raise_typed(self, path):
        """The fuzz-corpus contract: a Table, CSVReadError, or
        ProfileError — never an untyped crash."""
        try:
            table = load_csv_table(path)
        except CSVReadError:
            return
        assert isinstance(table, Table)
        try:
            profiles = profile_table(table)
        except ProfileError:
            return
        assert len(profiles) == len(table.column_names)

    def test_nul_bytes_stripped_and_counted(self):
        table = load_csv_table(MANGLED_DIR / "nul_bytes.csv")
        assert table.column_names == ["name", "age"]
        assert counter("csv.nul_bytes") >= 1

    def test_non_utf8_replacement_decoded(self):
        table = load_csv_table(MANGLED_DIR / "latin1.csv")
        assert table.column_names == ["city", "temp"]
        assert counter("csv.decode_replaced") == 1

    def test_ragged_rows_padded_and_counted(self):
        table = load_csv_table(MANGLED_DIR / "ragged.csv")
        assert table.column_names == ["a", "b", "c"]
        assert counter("csv.ragged_rows") == 2

    def test_bom_stripped_from_header(self):
        table = load_csv_table(MANGLED_DIR / "bom.csv")
        assert table.column_names == ["x", "y"]

    @pytest.mark.parametrize("name", ["empty.csv", "only_newlines.csv"])
    def test_contentless_input_raises_typed(self, name):
        with pytest.raises(CSVReadError):
            load_csv_table(MANGLED_DIR / name)

    def test_missing_file_raises_typed(self, tmp_path):
        with pytest.raises(CSVReadError):
            load_csv_table(tmp_path / "ghost.csv")

    def test_bom_declared_codec_is_honored(self):
        text = decode_csv_bytes("a,b\n1,2\n".encode("utf-16"))
        assert text == "a,b\n1,2\n"

    def test_lying_bom_raises_typed(self):
        # A UTF-16 BOM followed by non-UTF-16 bytes: the file declares its
        # encoding and violates it — unsalvageable, not replacement-mush.
        with pytest.raises(CSVReadError, match="utf-16-le"):
            decode_csv_bytes(b"\xff\xfe\x00\x01garbage")

    def test_injected_read_fault_is_typed(self, tmp_path):
        path = tmp_path / "fine.csv"
        path.write_text(CSV_TEXT)
        faults.install(plan({"point": "csv.read", "max_fires": 1}))
        with pytest.raises(CSVReadError, match="injected"):
            load_csv_table(path)
        # One strike only: ingestion recovers on retry.
        assert load_csv_table(path).column_names == ["id", "salary", "state"]


class TestProfileError:
    def test_lone_surrogate_raises_profile_error(self):
        column = Column("weird", ["\ud800oops", "ok", "fine", "x", "y"])
        with pytest.raises(ProfileError) as exc_info:
            profile_column(column, source_file="evil.csv")
        assert "weird" in str(exc_info.value)
        assert "evil.csv" in str(exc_info.value)

    def test_batch_path_raises_profile_error(self):
        table = Table(
            [Column("ok", ["1", "2", "3"]),
             Column("bad", ["\udfffx", "y", "z"])],
            name="evil",
        )
        with pytest.raises(ProfileError):
            profile_table(table)


# ---------------------------------------------------------------------------
# Atomic exports & checkpoints
# ---------------------------------------------------------------------------


class TestAtomicExports:
    def test_failed_write_preserves_previous_file(self, tmp_path):
        path = tmp_path / "manifest.json"
        write_json(str(path), {"run": 1})
        with pytest.raises(TypeError):
            write_json(str(path), {"bad": object()})
        assert json.loads(path.read_text()) == {"run": 1}
        assert list(tmp_path.glob("*.tmp")) == []

    def test_checkpoint_roundtrip(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record(
            {"name": "table1", "output": "rows\n", "wall_s": 1.25,
             "cpu_s": 1.0, "pid": 42, "attempt": 0}
        )
        completed = checkpoint.completed()
        assert completed["table1"]["output"] == "rows\n"
        assert completed["table1"]["wall_s"] == 1.25

    def test_checkpoint_skips_torn_records(self, tmp_path):
        checkpoint = RunCheckpoint(tmp_path / "run")
        checkpoint.record({"name": "good", "output": "ok"})
        (checkpoint.experiments_dir / "torn.json").write_text('{"name": "to')
        completed = checkpoint.completed()
        assert set(completed) == {"good"}
        assert counter("checkpoint.invalid") == 1


# ---------------------------------------------------------------------------
# Parallel engine: crash/hang detection and restart
# ---------------------------------------------------------------------------


def _fake_alpha(context) -> str:
    return "alpha-output"


def _fake_beta(context) -> str:
    return "beta-output"


def _fake_boom(context) -> str:
    raise ValueError("boom from inside the experiment")


@pytest.fixture
def fake_experiments(monkeypatch):
    monkeypatch.setitem(runner.EXPERIMENTS, "fake_alpha", _fake_alpha)
    monkeypatch.setitem(runner.EXPERIMENTS, "fake_beta", _fake_beta)
    monkeypatch.setitem(runner.EXPERIMENTS, "fake_boom", _fake_boom)
    return ["fake_alpha", "fake_beta"]


needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(), reason="needs fork"
)


class TestParallelEngine:
    @needs_fork
    def test_clean_run_yields_canonical_order(self, fake_experiments):
        records = list(
            run_parallel(fake_experiments, None, jobs=2, warm=False)
        )
        assert [r["name"] for r in records] == fake_experiments
        assert records[0]["output"] == "alpha-output"
        assert records[1]["output"] == "beta-output"
        assert all(r["attempts"] == 1 for r in records)

    @needs_fork
    def test_sigkilled_worker_is_restarted_and_recovers(self, fake_experiments):
        faults.install(plan({
            "point": "worker.run", "mode": "kill",
            "match": {"experiment": "fake_alpha", "attempt": "0"},
        }))
        records = list(
            run_parallel(fake_experiments, None, jobs=2, warm=False)
        )
        by_name = {r["name"]: r for r in records}
        assert by_name["fake_alpha"]["output"] == "alpha-output"
        assert by_name["fake_alpha"]["attempts"] == 2
        assert by_name["fake_beta"]["attempts"] == 1
        assert counter("worker.restart") == 1

    @needs_fork
    def test_hung_worker_is_killed_and_restarted(self, fake_experiments):
        faults.install(plan({
            "point": "worker.run", "mode": "hang", "seconds": 60,
            "match": {"experiment": "fake_beta", "attempt": "0"},
        }))
        records = list(run_parallel(
            fake_experiments, None, jobs=2, warm=False, worker_timeout_s=1.0
        ))
        by_name = {r["name"]: r for r in records}
        assert by_name["fake_beta"]["output"] == "beta-output"
        assert by_name["fake_beta"]["attempts"] == 2
        assert counter("worker.restart") == 1

    @needs_fork
    def test_restarts_exhausted_becomes_failure_record(self, fake_experiments):
        # Kill every attempt: no match clause, so restarts die too.
        faults.install(plan({
            "point": "worker.run", "mode": "kill",
            "match": {"experiment": "fake_alpha"},
        }))
        records = list(run_parallel(
            fake_experiments, None, jobs=2, warm=False, max_restarts=1
        ))
        by_name = {r["name"]: r for r in records}
        failure = by_name["fake_alpha"]
        assert failure["failed"] is True
        assert failure["attempts"] == 2
        assert "died" in failure["error"]
        assert by_name["fake_beta"]["output"] == "beta-output"

    @needs_fork
    def test_in_worker_exception_fails_without_retry(self, fake_experiments):
        names = ["fake_boom", "fake_alpha"]
        records = list(run_parallel(names, None, jobs=2, warm=False))
        by_name = {r["name"]: r for r in records}
        failure = by_name["fake_boom"]
        assert failure["failed"] is True
        assert failure["attempts"] == 1
        assert "boom from inside the experiment" in failure["error"]
        assert "Traceback" in failure["traceback"]
        assert counter("worker.restart") == 0

    def test_serial_fallback_reports_failures_too(self, fake_experiments):
        records = list(
            run_parallel(["fake_boom", "fake_alpha"], None, jobs=1, warm=False)
        )
        assert records[0]["failed"] is True
        assert records[1]["output"] == "alpha-output"


# ---------------------------------------------------------------------------
# Runner CLI: failure summary, exit codes, checkpoint/resume
# ---------------------------------------------------------------------------


class TestRunnerCLI:
    def test_unknown_experiment_in_list_errors(self):
        with pytest.raises(SystemExit):
            runner.main(["table1,definitely_not_real"])

    def test_resume_requires_run_dir(self):
        with pytest.raises(SystemExit):
            runner.main(["table1", "--resume"])

    def test_failure_exits_nonzero_with_summary(
        self, fake_experiments, capsys
    ):
        rc = runner.main(["fake_boom,fake_alpha"])
        out, err = capsys.readouterr()
        assert rc == 1
        assert "######## fake_boom FAILED ########" in out
        assert "######## fake_alpha (" in out  # the rest still ran
        assert "1 of 2 experiment(s) failed" in err
        assert "fake_boom: ValueError: boom" in err
        assert "Traceback" in err  # first failure's traceback propagated

    def test_run_dir_resume_skips_and_replays_verbatim(
        self, monkeypatch, tmp_path, capsys
    ):
        calls: list[str] = []

        def make_fake(name):
            def fake(context):
                calls.append(name)
                return f"{name}-output"
            return fake

        monkeypatch.setitem(runner.EXPERIMENTS, "fake_a", make_fake("fake_a"))
        monkeypatch.setitem(runner.EXPERIMENTS, "fake_b", make_fake("fake_b"))
        run_dir = tmp_path / "run"

        rc = runner.main(["fake_a,fake_b", "--run-dir", str(run_dir)])
        first_out = capsys.readouterr().out
        assert rc == 0
        assert calls == ["fake_a", "fake_b"]
        assert (run_dir / "experiments" / "fake_a.json").exists()

        rc = runner.main(
            ["fake_a,fake_b", "--run-dir", str(run_dir), "--resume"]
        )
        second_out = capsys.readouterr().out
        assert rc == 0
        assert calls == ["fake_a", "fake_b"]  # nothing reran
        # Stored wall times are replayed, so stdout is byte-identical.
        assert second_out == first_out

    def test_resume_runs_only_the_missing_experiment(
        self, monkeypatch, tmp_path, capsys
    ):
        calls: list[str] = []

        def make_fake(name):
            def fake(context):
                calls.append(name)
                return f"{name}-output"
            return fake

        monkeypatch.setitem(runner.EXPERIMENTS, "fake_a", make_fake("fake_a"))
        monkeypatch.setitem(runner.EXPERIMENTS, "fake_b", make_fake("fake_b"))
        run_dir = tmp_path / "run"
        assert runner.main(["fake_a", "--run-dir", str(run_dir)]) == 0
        capsys.readouterr()

        rc = runner.main(
            ["fake_a,fake_b", "--run-dir", str(run_dir), "--resume"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert calls == ["fake_a", "fake_b"]  # fake_a resumed, fake_b fresh
        assert "fake_a-output" in out and "fake_b-output" in out


# ---------------------------------------------------------------------------
# Serve: retrying client against an injected-fault server
# ---------------------------------------------------------------------------

FAST_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.01, max_delay_s=0.05,
    total_deadline_s=10.0, jitter=0.0,
)


@contextmanager
def degraded_server():
    """A live HTTP server answering via the rule-based degraded path (no
    model training), which is all the transport chaos tests need."""
    service = InferenceService(ModelRegistry(), max_wait_s=0.0)
    server = make_server("127.0.0.1", 0, service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    service.batcher.start()  # registry deliberately left "loading"
    try:
        yield f"http://127.0.0.1:{server.server_port}"
    finally:
        server.shutdown()
        service.drain(timeout=5)
        server.server_close()
        thread.join(timeout=5)


class TestServeChaos:
    def test_injected_503_is_retried_to_success(self):
        faults.install(plan({"point": "serve.accept", "on_call": 1}))
        with degraded_server() as url:
            client = ServeClient(url, retry=FAST_RETRY, rng=random.Random(0))
            response = client.infer_csv_text(CSV_TEXT, table="chaos")
        assert response["degraded"] is True
        assert counter("serve.fault_reject") == 1
        assert counter("client.retry.status_503") == 1

    def test_injected_disconnect_is_retried_to_success(self):
        faults.install(plan({"point": "serve.respond", "on_call": 1}))
        with degraded_server() as url:
            client = ServeClient(url, retry=FAST_RETRY, rng=random.Random(0))
            response = client.infer_csv_text(CSV_TEXT, table="chaos")
        assert response["degraded"] is True
        assert counter("serve.fault_disconnect") == 1
        assert counter("client.retry.transport") == 1

    def test_retry_honors_server_retry_after_floor(self):
        faults.install(plan({"point": "serve.accept", "on_call": 1}))
        # Backoff delays are ~0.1ms; the server's retry_after_s=0.05 floor
        # must dominate.
        eager = RetryPolicy(max_attempts=2, base_delay_s=0.0001,
                            max_delay_s=0.001, total_deadline_s=10.0,
                            jitter=0.0)
        with degraded_server() as url:
            client = ServeClient(url, retry=eager, rng=random.Random(0))
            start = time.monotonic()
            client.infer_csv_text(CSV_TEXT)
            elapsed = time.monotonic() - start
        assert elapsed >= 0.05

    def test_persistent_faults_exhaust_attempts(self):
        faults.install(plan({"point": "serve.accept"}))  # every request
        with degraded_server() as url:
            client = ServeClient(url, retry=FAST_RETRY, rng=random.Random(0))
            with pytest.raises(ServeClientError) as exc_info:
                client.infer_csv_text(CSV_TEXT)
        assert exc_info.value.status == 503
        assert counter("client.retry") == FAST_RETRY.max_attempts - 1

    def test_injected_client_fault_is_transport_retried(self):
        faults.install(plan({"point": "client.request", "on_call": 1,
                             "match": {"method": "POST"}}))
        with degraded_server() as url:
            client = ServeClient(url, retry=FAST_RETRY, rng=random.Random(0))
            response = client.infer_csv_text(CSV_TEXT, table="chaos")
        assert response["degraded"] is True
        assert counter("client.retry.transport") == 1

    def test_connection_refused_is_transport_retried(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.01,
                             max_delay_s=0.02, total_deadline_s=5.0,
                             jitter=0.0)
        client = ServeClient(
            f"http://127.0.0.1:{dead_port}", timeout_s=2.0,
            retry=policy, rng=random.Random(0),
        )
        with pytest.raises(ServeClientError) as exc_info:
            client.healthz()
        assert exc_info.value.transport is True
        assert counter("client.retry.transport") == 1

    def test_model_load_fault_fails_health_not_hangs(self, tmp_path):
        faults.install(plan({"point": "model.load", "error": "OSError"}))
        artifact = tmp_path / "rf.model"
        artifact.write_bytes(b"never actually read")
        registry = ModelRegistry(model_path=str(artifact))
        registry.load(background=False)
        assert registry.ready is False
        assert registry.state == "failed"
        assert "OSError" in registry.error
