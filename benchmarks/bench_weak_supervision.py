"""Extension bench — §6.2 future work: weak-supervision amplification.

Trains on a small labeled dev set, weak-labels the rest of the corpus with
labeling functions (the tool heuristics + signal probes), and checks that
amplification does not hurt — and that the weak labels themselves are far
better than chance.
"""

from conftest import emit

from repro.datagen.corpus import generate_corpus
from repro.weak import amplify


def test_weak_supervision_amplification(benchmark, context):
    corpus = context.corpus
    by_key = {(t.name, c.name): c for t in corpus.files for c in t}
    columns = [
        by_key[(p.source_file, p.name)] for p in corpus.dataset.profiles
    ]
    n_dev = max(100, len(corpus.dataset) // 10)
    dev = corpus.dataset.subset(range(n_dev))
    dev_columns = columns[:n_dev]

    result = benchmark.pedantic(
        lambda: amplify(
            dev, dev_columns,
            corpus.dataset.profiles[n_dev:], columns[n_dev:],
            n_estimators=30,
        ),
        rounds=1,
        iterations=1,
    )

    eval_corpus = generate_corpus(n_examples=400, seed=context.seed + 100)
    dev_only = result.dev_only_model.score(eval_corpus.dataset)
    amplified = result.amplified_model.score(eval_corpus.dataset)
    emit(
        "§6.2 — weak-supervision amplification",
        f"dev labels: {result.n_dev}\n"
        f"weakly labeled kept: {result.n_weakly_labeled} "
        f"(abstained on {result.n_abstained})\n"
        f"weak-label accuracy vs hidden truth: "
        f"{result.weak_label_accuracy:.3f}\n"
        f"dev-only model on fresh corpus:  {dev_only:.3f}\n"
        f"amplified model on fresh corpus: {amplified:.3f}",
    )
    assert result.weak_label_accuracy > 0.6
    assert amplified >= dev_only - 0.05
