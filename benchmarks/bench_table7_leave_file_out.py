"""Bench E6 — regenerate Table 7: leave-datafile-out cross-validation."""

from conftest import emit

from repro.benchmark.table7 import render_table7, run_table7


def test_table7_leave_datafile_out(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_table7(context, n_splits=5, models=("logreg", "rf", "knn")),
        rounds=1,
        iterations=1,
    )
    emit("Table 7 — leave-datafile-out 5-fold CV", render_table7(result))

    # paper shape: RF stays the best model even on unseen files, and the
    # unseen-file accuracy stays close to the random-split accuracy
    assert result.accuracy["rf"]["test"] > result.accuracy["logreg"]["test"] - 0.02
    assert result.accuracy["rf"]["test"] > 0.8
