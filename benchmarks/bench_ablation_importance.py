"""Ablation bench — §6.2: which feature blocks carry the signal?

The paper's takeaway: descriptive stats and attribute names matter most;
raw sample values are marginal.  Asserted via block permutation importance.
"""

from conftest import emit

from repro.benchmark.importance import (
    render_block_importance,
    run_block_importance,
)


def test_feature_block_importance(benchmark, context):
    rows = benchmark.pedantic(
        lambda: run_block_importance(context), rounds=1, iterations=1
    )
    emit("§6.2 — feature-block permutation importance",
         render_block_importance(rows))

    by_block = {row.block: row for row in rows}
    # stats and names each matter more than the raw sample values
    assert by_block["stats"].drop >= by_block["sample1_bigrams"].drop - 0.01
    assert by_block["stats"].drop > 0.02  # stats carry real signal
