"""Bench E3 — regenerate Table 3: error analysis of the best Random Forest."""

from conftest import emit

from repro.benchmark.table3 import render_table3, run_table3


def test_table3_error_analysis(benchmark, context):
    context.model("rf")
    result = benchmark.pedantic(
        lambda: run_table3(context, max_examples=15), rounds=1, iterations=1
    )
    emit("Table 3 — errors made by RandomForest", render_table3(result))
    assert result.error_rate < 0.2  # RF is the best model; errors are the tail
