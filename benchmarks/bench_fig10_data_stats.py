"""Bench E12 — regenerate Table 18 / Figure 10: descriptive stats by class."""

from conftest import emit

from repro.benchmark.datastats import render_table18, run_datastats
from repro.types import FeatureType


def test_table18_figure10_data_stats(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_datastats(context), rounds=1, iterations=1
    )
    emit("Table 18 / Figure 10 — descriptive statistics by class",
         render_table18(result))

    # paper shapes: Sentence/List values are long; Numeric single-token;
    # Not-Generalizable columns have the highest missingness
    sentence = result.summary(FeatureType.SENTENCE, "mean_char_count")["avg"]
    numeric = result.summary(FeatureType.NUMERIC, "mean_char_count")["avg"]
    assert sentence > 3 * numeric
    ng_nans = result.summary(FeatureType.NOT_GENERALIZABLE, "pct_nans")["avg"]
    dt_nans = result.summary(FeatureType.DATETIME, "pct_nans")["avg"]
    assert ng_nans > dt_nans
    numeric_words = result.summary(FeatureType.NUMERIC, "mean_word_count")["avg"]
    assert numeric_words < 1.1  # all Numeric samples are single tokens
