"""Bench E16 — Section 2.4: labeling bootstrap + crowdsourcing simulation."""

from conftest import emit

from repro.benchmark.labeling import (
    run_crowdsourcing_simulation,
    run_labeling_bootstrap,
)


def test_labeling_bootstrap(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_labeling_bootstrap(context, seed_size=500),
        rounds=1,
        iterations=1,
    )
    emit(
        "Section 2.4 — labeling bootstrap",
        f"seed={result.seed_size}  5-fold CV accuracy={result.cv_accuracy:.3f}\n"
        f"group sizes: {result.group_sizes}",
    )
    # paper: a 500-example seed RF reached ~74%; ours should be comparable+
    assert result.cv_accuracy > 0.65


def test_crowdsourcing_noise_simulation(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_crowdsourcing_simulation(context), rounds=1, iterations=1
    )
    emit(
        "Appendix C — crowdsourcing simulation",
        f"worker accuracy={result.worker_accuracy:.2f}  "
        f"majority vote accuracy={result.majority_vote_accuracy:.3f}  "
        f"3+ label share={result.pct_examples_with_3plus_labels:.2f}",
    )
    # paper: crowd labels were too noisy to use
    assert result.majority_vote_accuracy < 0.95
