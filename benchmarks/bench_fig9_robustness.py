"""Bench E10 — regenerate Figure 9 / Table 16: perturbation robustness."""

import numpy as np
from conftest import emit

from repro.benchmark.robustness import render_table16, run_robustness


def test_figure9_table16_robustness(benchmark, context):
    context.model("rf")
    context.model("logreg")
    result = benchmark.pedantic(
        lambda: run_robustness(
            context, models=("logreg", "rf"), n_runs=25, max_columns=150
        ),
        rounds=1,
        iterations=1,
    )
    emit("Table 16 / Figure 9 — prediction stability under resampling",
         render_table16(result))

    # paper shape: both models are very robust (median stability 100%)
    for model in ("logreg", "rf"):
        assert float(np.median(result.stability[model])) >= 90.0
