"""Bench E8 — regenerate Table 12: ablation of type-specific stats features."""

from conftest import emit

from repro.benchmark.table12 import render_table12, run_table12


def test_table12_feature_ablation(benchmark, context):
    rows = benchmark.pedantic(
        lambda: run_table12(context), rounds=1, iterations=1
    )
    emit("Table 12 — dropping list/url/datetime probes one at a time",
         render_table12(rows))

    # paper shape: dropping a single probe moves 9-class accuracy marginally
    by_key = {(r.model, r.ablation): r for r in rows}
    for model in ("logreg", "rf"):
        full = by_key[(model, "full")].nine_class_accuracy
        for ablation in ("minus list feature", "minus url feature",
                         "minus datetime feature"):
            assert abs(full - by_key[(model, ablation)].nine_class_accuracy) < 0.1
