"""Bench E1 — regenerate Table 1 (+ Table 8 F1): binarized per-class metrics."""

from conftest import emit

from repro.benchmark.table1 import render_table1, run_table1


def test_table1_binarized_metrics(benchmark, context):
    # warm the cached models outside the timed region
    context.model("rf")
    context.model("logreg")
    context.model("cnn")
    _ = context.sherlock

    result = benchmark.pedantic(
        lambda: run_table1(context), rounds=1, iterations=1
    )
    emit("Table 1 / Table 8 — binarized class-specific metrics",
         render_table1(result))

    # paper shape: ML models beat every prior tool on 9-class accuracy
    rf = result.nine_class["rf"]
    for tool in ("tfdv", "pandas", "transmogrifai", "autogluon",
                 "sherlock", "rules"):
        assert rf > result.nine_class[tool]
