"""Bench E9 — regenerate Table 15: double representation of integer columns."""

from conftest import downstream_names, emit

from repro.benchmark.table15 import render_table15, run_table15


def test_table15_double_representation(benchmark, context):
    names = downstream_names()
    rows = benchmark.pedantic(
        lambda: run_table15(context, dataset_names=names, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("Table 15 — double representation of integer columns",
         render_table15(rows))

    # paper shape: NewRF underperforms truth on no more datasets than the
    # doubled tools do (it doubles only when unsure)
    by_key = {(r.approach, r.model_kind): r for r in rows}
    for kind in ("linear", "forest"):
        newrf = by_key[("newrf", kind)].underperform_truth
        tools = [
            by_key[(f"{tool}:double", kind)].underperform_truth
            for tool in ("pandas", "tfdv", "autogluon")
        ]
        assert newrf <= max(tools)
