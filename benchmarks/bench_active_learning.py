"""Extension bench — §3.3/§6.2: confidence-driven annotation prioritization.

Simulates the user-in-the-loop labeling campaign and checks that
uncertainty-based selection is at least competitive with random labeling
under the same budget.
"""

from conftest import emit

from repro.active import compare_strategies
from repro.datagen.corpus import generate_corpus


def test_active_learning_strategies(benchmark, context):
    test_corpus = generate_corpus(n_examples=300, seed=context.seed + 55)
    curves = benchmark.pedantic(
        lambda: compare_strategies(
            context.dataset,
            test_corpus.dataset,
            strategies=("random", "least_confidence", "margin"),
            seed_size=80,
            batch_size=60,
            n_rounds=3,
            n_estimators=20,
            random_state=context.seed,
        ),
        rounds=1,
        iterations=1,
    )
    lines = []
    for strategy, curve in curves.items():
        series = ", ".join(
            f"{spent}->{acc:.3f}"
            for spent, acc in zip(curve.labels_spent, curve.test_accuracy)
        )
        lines.append(f"{strategy:<18} {series}")
    emit("§3.3 — active labeling curves (labels -> accuracy)", "\n".join(lines))

    random_final = curves["random"].final_accuracy()
    for strategy in ("least_confidence", "margin"):
        assert curves[strategy].final_accuracy() >= random_final - 0.05
