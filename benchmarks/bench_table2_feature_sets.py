"""Bench E2 — regenerate Tables 2 and 9: feature-set sweep of the models."""

from conftest import emit

from repro.benchmark.table2 import render_table2, run_table2


def test_table2_feature_sets(benchmark, context):
    result = benchmark.pedantic(
        lambda: run_table2(context), rounds=1, iterations=1
    )
    for split in ("train", "validation", "test"):
        emit(f"Table 2 / Table 9 — {split} accuracy", render_table2(result, split))

    # paper shape: stats+name is the strongest single pairing for RF
    label, best = result.best_feature_set("rf")
    assert best > 0.85
    assert "X_stats" in label or "X2_name" in label
