"""Bench E7 — regenerate Table 11: extending the vocabulary (Country/State)."""

from conftest import emit

from repro.benchmark.table11 import render_table11, run_table11


def test_table11_vocabulary_extension(benchmark, context):
    rows = benchmark.pedantic(
        lambda: run_table11(context, extra_train_counts=(100, 200),
                            extra_test=100),
        rounds=1,
        iterations=1,
    )
    emit("Table 11 — 10-class vocabulary extension", render_table11(rows))

    # paper shape: high precision/recall with only ~100 extra labels, and
    # recall improves (or holds) when doubling the labels
    by_key = {(r.extended_type.value, r.n_extra_train): r for r in rows}
    for name in ("Country", "State"):
        small = by_key[(name, 100)]
        large = by_key[(name, 200)]
        assert small.precision > 0.6
        assert large.recall >= small.recall - 0.05
