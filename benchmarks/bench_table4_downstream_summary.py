"""Bench E4 — regenerate Table 4: downstream type-inference summaries."""

from conftest import emit

from repro.benchmark.downstream_exp import render_table4


def test_table4_downstream_summary(benchmark, downstream_result):
    result = benchmark.pedantic(
        lambda: downstream_result, rounds=1, iterations=1
    )
    emit("Table 4 — downstream type inference summary", render_table4(result))

    rows = {row.approach: row for row in result.inference}
    # paper shape: pandas has much lower column coverage; OurRF covers all
    assert rows["pandas"].covered < rows["autogluon"].covered
    assert rows["ourrf"].covered == rows["ourrf"].total
    # OurRF underperforms truth on the fewest datasets (linear model)
    comparison = {c.approach: c for c in result.comparisons["linear"]}
    assert (
        comparison["ourrf"].underperform
        <= min(comparison[t].underperform for t in ("pandas", "tfdv", "autogluon"))
    )
