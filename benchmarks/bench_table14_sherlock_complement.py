"""Bench — regenerate Table 14: Sherlock complementarity with OurRF."""

from conftest import emit

from repro.benchmark.table14 import render_table14, run_table14


def test_table14_sherlock_complementarity(benchmark, context):
    context.model("rf")
    _ = context.sherlock
    rows = benchmark.pedantic(
        lambda: run_table14(context), rounds=1, iterations=1
    )
    emit("Table 14 — Sherlock on top of OurRF's Categorical predictions",
         render_table14(rows))

    # paper shape: gating Sherlock behind OurRF's Categorical predictions
    # does not reduce its semantic-type recall (they are complementary)
    for row in rows:
        assert row.gated_recall >= row.standalone_recall - 0.25
        assert row.ourrf_categorical >= row.n_examples * 0.5
