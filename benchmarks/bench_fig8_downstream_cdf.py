"""Bench E14 — regenerate Figure 8: CDFs of downstream drops vs truth."""

import numpy as np
from conftest import emit

from repro.benchmark.downstream_exp import render_figure8


def test_figure8_delta_cdfs(benchmark, downstream_result):
    result = benchmark.pedantic(
        lambda: downstream_result, rounds=1, iterations=1
    )
    emit("Figure 8 — CDFs of downstream performance drop vs truth",
         render_figure8(result))

    # paper shape: OurRF's drop distribution dominates the tools' (its median
    # drop is no larger than the worst tool's median drop)
    ourrf = np.median(
        np.maximum(0.0, -result.deltas_vs_truth("ourrf", "linear"))
    )
    worst_tool = max(
        np.median(np.maximum(0.0, -result.deltas_vs_truth(t, "linear")))
        for t in ("pandas", "tfdv", "autogluon")
    )
    assert ourrf <= worst_tool + 1e-9
