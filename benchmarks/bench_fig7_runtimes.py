"""Bench E13 — regenerate Figure 7: per-column prediction runtime breakdown."""

from conftest import emit

from repro.benchmark.runtime import render_figure7, run_runtimes


def test_figure7_prediction_runtimes(benchmark, context):
    for name in ("logreg", "svm", "rf", "cnn", "knn"):
        context.model(name)  # fit outside the timed region
    breakdowns = benchmark.pedantic(
        lambda: run_runtimes(context, max_columns=100), rounds=1, iterations=1
    )
    emit("Figure 7 — online prediction runtime per column",
         render_figure7(breakdowns))

    # paper shape: every model predicts in well under 0.2 s per column
    for b in breakdowns:
        assert b.total < 0.2, b.model
