"""Bench E5 — regenerate Table 5: per-dataset downstream deltas vs truth."""

from conftest import emit

from repro.benchmark.downstream_exp import render_table5


def test_table5_downstream_deltas(benchmark, downstream_result):
    result = benchmark.pedantic(
        lambda: downstream_result, rounds=1, iterations=1
    )
    emit("Table 5 — downstream models under inferred vs true types",
         render_table5(result))

    # paper shape: on integer-categorical datasets the tools hurt the
    # downstream linear model while OurRF stays close to truth
    suite = result.suite
    if "Hayes" in suite.scores["truth"]["linear"]:
        assert (
            suite.delta_vs_truth("ourrf", "linear", "Hayes")
            >= suite.delta_vs_truth("tfdv", "linear", "Hayes")
        )
