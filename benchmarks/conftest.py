"""Shared state for the benchmark suite.

The benchmarks regenerate the paper's tables/figures at a laptop-friendly
scale (REPRO_SCALE columns, default 1500; the paper's full scale is 9921 —
set REPRO_SCALE=9921 to match it).  The corpus and fitted models are shared
across bench files through a session-scoped context.
"""

from __future__ import annotations

import os

import pytest

from repro.benchmark.context import BenchmarkContext

SCALE = int(os.environ.get("REPRO_SCALE", "1200"))
SEED = int(os.environ.get("REPRO_SEED", "0"))

#: Downstream datasets exercised by default (REPRO_FULL=1 runs all 30).
DOWNSTREAM_SUBSET = (
    "Cancer", "Nursery", "Hayes", "Supreme", "Boxing", "Auto-MPG",
    "BBC", "Zoo", "IOT", "MBA", "Vineyard", "Accident",
)


def downstream_names() -> tuple[str, ...] | None:
    if os.environ.get("REPRO_FULL"):
        return None  # all 30
    return DOWNSTREAM_SUBSET


@pytest.fixture(scope="session")
def context() -> BenchmarkContext:
    return BenchmarkContext(
        n_examples=SCALE, seed=SEED, rf_estimators=40, cnn_epochs=8
    )


@pytest.fixture(scope="session")
def downstream_result(context):
    """The (expensive) downstream suite run, shared by Tables 4/5 + Figure 8."""
    from repro.benchmark.downstream_exp import run_downstream_experiment

    return run_downstream_experiment(
        context, dataset_names=downstream_names(), seed=SEED
    )


ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "artifacts")


def emit(title: str, body: str) -> None:
    """Print a regenerated table and persist it under benchmarks/artifacts/.

    pytest captures stdout by default, so every regenerated table is also
    written to disk — that is the paper-vs-measured record EXPERIMENTS.md
    links to.
    """
    text = f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{body}"
    print(text)
    os.makedirs(ARTIFACT_DIR, exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in title.split("—")[0].strip()
    ).strip("_").lower()
    with open(
        os.path.join(ARTIFACT_DIR, f"{slug}.txt"), "w", encoding="utf-8"
    ) as handle:
        handle.write(text.lstrip("\n") + "\n")
