"""Bench E11 — regenerate Table 17: confusion matrices (rules/RF/Sherlock)."""

import numpy as np
from conftest import emit

from repro.benchmark.table17 import render_table17, run_table17


def test_table17_confusion_matrices(benchmark, context):
    context.model("rf")
    _ = context.sherlock
    result = benchmark.pedantic(
        lambda: run_table17(context), rounds=1, iterations=1
    )
    emit("Table 17 — confusion matrices", render_table17(result))

    n = int(result.matrix("rf").sum())
    diag = {
        name: float(np.trace(result.matrix(name))) / n
        for name in ("rules", "rf", "sherlock")
    }
    # paper shape: RF most diagonal; Sherlock weakest (vocabulary mismatch)
    assert diag["rf"] > diag["rules"] > diag["sherlock"] - 0.15
